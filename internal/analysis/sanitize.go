package analysis

import (
	"fmt"

	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// sanitizePass validates the trace stream itself: call/return balance,
// symbol-table consistency, memory accesses inside known segments, and
// thread-id ordering. It reports with precise trace positions instead of
// stopping at the first defect the way trace.Validate does, and it covers
// every invariant the DCFG builder relies on, so a trace with zero sanitize
// errors is safe for the structural passes to consume.
type sanitizePass struct{}

func (sanitizePass) ID() string { return "sanitize" }
func (sanitizePass) Desc() string {
	return "structural trace validation: call/return nesting, symbol-table consistency, segment bounds, thread-id ordering"
}

// maxSanitizeFindings caps the reported defects; corrupt inputs can carry
// millions and one screenful already proves the trace unusable.
const maxSanitizeFindings = 200

type sanitizer struct {
	ctx       *Context
	emitted   int
	truncated int
}

func (s *sanitizer) report(f Finding) {
	if s.emitted >= maxSanitizeFindings {
		s.truncated++
		return
	}
	s.emitted++
	s.ctx.add(f)
}

func (s *sanitizer) at(sev Severity, tid, record int, format string, args ...any) {
	f := finding("sanitize", sev)
	f.Thread = tid
	f.Record = record
	f.Message = fmt.Sprintf(format, args...)
	s.report(f)
}

func (sanitizePass) Run(ctx *Context) error {
	t := ctx.Trace
	s := &sanitizer{ctx: ctx}

	for i, th := range t.Threads {
		if th.TID < 0 {
			s.at(SevError, th.TID, -1, "negative thread id %d", th.TID)
		}
		if i > 0 {
			prev := t.Threads[i-1].TID
			if th.TID <= prev {
				s.at(SevWarning, th.TID, -1, "thread ids not strictly increasing: %d follows %d", th.TID, prev)
			} else if th.TID != prev+1 {
				s.at(SevWarning, th.TID, -1, "thread-id gap: %d follows %d", th.TID, prev)
			}
		}
		s.thread(t, th)
	}

	if s.truncated > 0 {
		f := finding("sanitize", SevWarning)
		f.Message = fmt.Sprintf("%d further finding(s) suppressed after the first %d", s.truncated, maxSanitizeFindings)
		ctx.add(f)
	}
	return nil
}

// thread walks one record stream with an explicit call stack, mirroring the
// frame bookkeeping of cfg.Build so its error cases are all caught here.
func (s *sanitizer) thread(t *trace.Trace, th *trace.ThreadTrace) {
	var stack []uint32 // callee function ids of in-flight invocations
	for ri := range th.Records {
		r := &th.Records[ri]
		switch r.Kind {
		case trace.KindCall:
			if int(r.Callee) >= len(t.Funcs) {
				s.at(SevError, th.TID, ri, "call to function %d outside the symbol table (%d functions)", r.Callee, len(t.Funcs))
			}
			stack = append(stack, r.Callee)
		case trace.KindRet:
			if len(stack) == 0 {
				s.at(SevError, th.TID, ri, "return below the thread's entry call")
				continue
			}
			stack = stack[:len(stack)-1]
		case trace.KindBBL:
			s.block(t, th, ri, r, stack)
		case trace.KindSkip:
			if r.SkipKind != trace.SkipIO && r.SkipKind != trace.SkipSpin {
				s.at(SevWarning, th.TID, ri, "unknown skip kind %d", r.SkipKind)
			}
		default:
			s.at(SevError, th.TID, ri, "unknown record kind %d", r.Kind)
		}
	}
	if len(stack) != 0 {
		s.at(SevError, th.TID, len(th.Records)-1, "%d unterminated function invocation(s) at end of stream", len(stack))
	}
}

func (s *sanitizer) block(t *trace.Trace, th *trace.ThreadTrace, ri int, r *trace.Record, stack []uint32) {
	if len(stack) == 0 {
		s.at(SevError, th.TID, ri, "basic block outside any function invocation")
	} else if top := stack[len(stack)-1]; top != r.Func {
		s.at(SevError, th.TID, ri, "block of %s inside an invocation of %s", t.FuncName(r.Func), t.FuncName(top))
	}
	if int(r.Func) >= len(t.Funcs) {
		s.at(SevError, th.TID, ri, "function %d outside the symbol table (%d functions)", r.Func, len(t.Funcs))
	} else {
		blocks := t.Funcs[r.Func].Blocks
		if int(r.Block) >= len(blocks) {
			s.at(SevError, th.TID, ri, "block %d outside %s (%d blocks)", r.Block, t.FuncName(r.Func), len(blocks))
		} else if want := uint64(blocks[r.Block].NInstr); r.N != want {
			s.at(SevError, th.TID, ri, "%s.b%d executed %d instructions, static table says %d",
				t.FuncName(r.Func), r.Block, r.N, want)
		}
	}
	for mi := range r.Mem {
		m := &r.Mem[mi]
		if uint64(m.Instr) >= r.N {
			s.at(SevError, th.TID, ri, "memory access at instruction %d outside block of %d instructions", m.Instr, r.N)
		}
		if m.Size == 0 {
			s.at(SevError, th.TID, ri, "zero-size memory access at 0x%x", m.Addr)
			continue
		}
		if m.Addr < vm.GlobalBase {
			s.at(SevError, th.TID, ri, "access at 0x%x outside the known segments (global/heap/stack)", m.Addr)
			continue
		}
		end := m.Addr + uint64(m.Size) - 1
		if end < m.Addr {
			s.at(SevError, th.TID, ri, "%d-byte access at 0x%x wraps the address space", m.Size, m.Addr)
		} else if vm.SegmentOf(m.Addr) != vm.SegmentOf(end) {
			s.at(SevError, th.TID, ri, "%d-byte access at 0x%x straddles the %s/%s segment boundary",
				m.Size, m.Addr, vm.SegmentOf(m.Addr), vm.SegmentOf(end))
		}
	}
	// Two stores from one instruction to overlapping bytes cannot come from
	// any real instruction (a read-modify-write emits a load and a store).
	if n := len(r.Mem); n >= 2 && n <= 64 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := &r.Mem[i], &r.Mem[j]
				if a.Instr != b.Instr || !a.Store || !b.Store || a.Size == 0 || b.Size == 0 {
					continue
				}
				if a.Addr < b.Addr+uint64(b.Size) && b.Addr < a.Addr+uint64(a.Size) {
					s.at(SevWarning, th.TID, ri, "instruction %d issues overlapping stores at 0x%x and 0x%x", a.Instr, a.Addr, b.Addr)
				}
			}
		}
	}
	for li := range r.Locks {
		l := &r.Locks[li]
		if uint64(l.Instr) >= r.N {
			s.at(SevError, th.TID, ri, "lock operation at instruction %d outside block of %d instructions", l.Instr, r.N)
		}
		if l.Addr < vm.GlobalBase {
			s.at(SevError, th.TID, ri, "lock word at 0x%x outside the known segments", l.Addr)
		}
	}
}
