package report

import (
	"fmt"

	"threadfuser/internal/gpusim"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/workloads"
)

// The ext* experiments go beyond the paper's figures, using the same
// infrastructure to answer the questions its section V-B raises: what does
// warp occupancy actually look like inside inefficient workloads, and how
// many SIMT cores does a workload class need?

// extWorkloads is the mixed set the extension studies run over.
var extWorkloads = []string{
	"paropoly.nbody",
	"usuite.textsearch.mid",
	"usuite.hdsearch.mid",
	"rodinia.bfs",
	"other.pigz",
}

// Ext1Row is one workload's occupancy distribution summary.
type Ext1Row struct {
	Workload   string
	Efficiency float64
	// FullPct / SinglePct are the fractions of warp instructions issued
	// with all lanes active and with exactly one lane active.
	FullPct   float64
	SinglePct float64
	// MedianLanes is the median active-lane count over warp instructions.
	MedianLanes int
}

// Ext1Data is the occupancy-histogram study.
type Ext1Data struct {
	WarpSize int
	Rows     []Ext1Row
}

// Ext1 summarizes active-lane occupancy distributions: two workloads with
// the same equation-1 efficiency can have very different histograms (evenly
// half-full warps vs full warps plus serialized single-lane tails), and the
// histogram says which hardware remedy — smaller warps vs dynamic warp
// compaction — would help.
func Ext1(s Scale) (*Ext1Data, error) {
	d := &Ext1Data{WarpSize: 32}
	// Cells run concurrently into index-addressed slots; rows with no warp
	// instructions stay nil and are compacted afterwards, preserving the
	// serial path's skip-empty behaviour and ordering.
	rows := make([]*Ext1Row, len(extWorkloads))
	g := s.pool()
	for i, name := range extWorkloads {
		i, name := i, name
		g.Go(func() error {
			w, err := workloads.ByName(name)
			if err != nil {
				return err
			}
			rep, _, _, err := analyze(w, s, 32, false)
			if err != nil {
				return err
			}
			var total, full, single, cum uint64
			for _, v := range rep.LaneHistogram {
				total += v
			}
			if total == 0 {
				return nil
			}
			full = rep.LaneHistogram[len(rep.LaneHistogram)-1]
			single = rep.LaneHistogram[1]
			median := 0
			for k, v := range rep.LaneHistogram {
				cum += v
				if cum >= total/2 {
					median = k
					break
				}
			}
			rows[i] = &Ext1Row{
				Workload:    name,
				Efficiency:  rep.Efficiency,
				FullPct:     100 * float64(full) / float64(total),
				SinglePct:   100 * float64(single) / float64(total),
				MedianLanes: median,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r != nil {
			d.Rows = append(d.Rows, *r)
		}
	}
	return d, nil
}

// Render formats the occupancy study.
func (d *Ext1Data) Render() string {
	t := newTable("workload", "efficiency", "full warps", "single-lane", "median lanes")
	for _, r := range d.Rows {
		t.add(r.Workload, pct(r.Efficiency),
			fmt.Sprintf("%5.1f%%", r.FullPct),
			fmt.Sprintf("%5.1f%%", r.SinglePct),
			fmt.Sprintf("%d", r.MedianLanes))
	}
	return "Extension 1: Active-lane occupancy distributions (warp=32)\n" + t.String() +
		"Workloads with equal efficiency but different shapes need different hardware fixes:\n" +
		"single-lane tails respond to serialization fixes, uniformly thin warps to narrower SIMD.\n"
}

// Ext2Row is one (workload, SM count) simulation point.
type Ext2Row struct {
	Workload string
	Cycles   map[int]uint64 // SM count -> cycles
}

// Ext2Data is the SM-scaling study.
type Ext2Data struct {
	SMCounts []int
	Rows     []Ext2Row
}

// Ext2 sweeps the SIMT machine's SM count for each workload — section
// V-B's design question for SIMT hardware between a multicore CPU and a
// GPU. Divergent workloads saturate with few SMs; convergent, occupancy-
// rich ones keep scaling.
func Ext2(s Scale) (*Ext2Data, error) {
	base := gpusim.RTX3070()
	cfgs := gpusim.ScaleSweep(base, 16)
	d := &Ext2Data{}
	for _, c := range cfgs {
		d.SMCounts = append(d.SMCounts, c.NumSMs)
	}
	d.Rows = make([]Ext2Row, len(extWorkloads))
	g := s.pool()
	for i, name := range extWorkloads {
		i, name := i, name
		g.Go(func() error {
			w, err := workloads.ByName(name)
			if err != nil {
				return err
			}
			cfg := s.config(w)
			if cfg.Threads == 0 {
				cfg.Threads = 256 // enough warps to make scaling meaningful
			}
			inst, err := w.Instantiate(cfg)
			if err != nil {
				return err
			}
			tr, err := inst.Trace()
			if err != nil {
				return err
			}
			kt, err := simtrace.Generate(inst.Prog, tr, 32)
			if err != nil {
				return err
			}
			points, err := gpusim.Sweep(kt, cfgs)
			if err != nil {
				return err
			}
			row := Ext2Row{Workload: name, Cycles: map[int]uint64{}}
			for _, pt := range points {
				row.Cycles[pt.Config.NumSMs] = pt.Result.Cycles
			}
			d.Rows[i] = row
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the scaling study.
func (d *Ext2Data) Render() string {
	cols := []string{"workload"}
	for _, n := range d.SMCounts {
		cols = append(cols, fmt.Sprintf("%d SM", n))
	}
	t := newTable(cols...)
	for _, r := range d.Rows {
		cells := []string{r.Workload}
		base := r.Cycles[d.SMCounts[0]]
		for _, n := range d.SMCounts {
			speed := float64(base) / float64(r.Cycles[n])
			cells = append(cells, fmt.Sprintf("%dcy (%.1fx)", r.Cycles[n], speed))
		}
		t.add(cells...)
	}
	return "Extension 2: SM-count scaling at 256 threads (speedup vs 1 SM)\n" + t.String()
}
