// Command tfdiff compares two MIMD traces through the ThreadFuser analyzer
// — the measure/fix/re-measure loop of the paper's HDSearch-Midtier case
// study (section V-A) as a tool. It prints the headline metric deltas and a
// per-function comparison that shows exactly where an optimization moved
// the needle.
//
// Usage:
//
//	tftrace -workload usuite.hdsearch.mid       -o before.tft
//	tftrace -workload usuite.hdsearch.mid.fixed -o after.tft
//	tfdiff -a before.tft -b after.tft
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
)

func main() {
	var (
		aPath    = flag.String("a", "", "baseline .tft trace (required)")
		bPath    = flag.String("b", "", "comparison .tft trace (required)")
		warpSize = flag.Int("warp", 32, "warp width to model")
		locks    = flag.Bool("locks", false, "emulate intra-warp lock serialization")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfdiff -a before.tft -b after.tft [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tfdiff: unexpected argument %q (traces are given with -a/-b)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "tfdiff: both -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	opts := core.Defaults()
	opts.WarpSize = *warpSize
	opts.EmulateLocks = *locks

	a := analyzeFile(*aPath, opts)
	b := analyzeFile(*bPath, opts)

	fmt.Printf("baseline    %s (%d threads)\n", a.Program, a.Threads)
	fmt.Printf("comparison  %s (%d threads)\n\n", b.Program, b.Threads)

	row := func(name string, av, bv float64, unit string) {
		delta := bv - av
		sign := "+"
		if delta < 0 {
			sign = ""
		}
		fmt.Printf("%-22s %10.2f%s %10.2f%s   (%s%.2f%s)\n", name, av, unit, bv, unit, sign, delta, unit)
	}
	row("SIMT efficiency", a.Efficiency*100, b.Efficiency*100, "%")
	row("heap tx/instr", a.HeapTxPerInstr, b.HeapTxPerInstr, "")
	row("stack tx/instr", a.StackTxPerInstr, b.StackTxPerInstr, "")
	row("traced", a.TracedPercent, b.TracedPercent, "%")
	fmt.Printf("%-22s %10d  %10d\n", "thread instructions", a.TotalInstrs, b.TotalInstrs)
	fmt.Printf("%-22s %10d  %10d\n", "lockstep issues", a.LockstepInstrs, b.LockstepInstrs)

	// Per-function comparison, matched by name; functions present on only
	// one side show a dash.
	names := map[string]bool{}
	for _, f := range a.PerFunction {
		names[f.Name] = true
	}
	for _, f := range b.PerFunction {
		names[f.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return shareOf(a, ordered[i])+shareOf(b, ordered[i]) > shareOf(a, ordered[j])+shareOf(b, ordered[j])
	})

	fmt.Printf("\n%-22s %22s %22s\n", "FUNCTION", "BASELINE (share@eff)", "COMPARISON (share@eff)")
	for _, n := range ordered {
		fmt.Printf("%-22s %22s %22s\n", n, cell(a, n), cell(b, n))
	}
}

func analyzeFile(path string, opts core.Options) *core.Report {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rep, err := core.Analyze(tr, opts)
	if err != nil {
		fatal(err)
	}
	return rep
}

func shareOf(r *core.Report, name string) float64 {
	if f, ok := r.Function(name); ok {
		return f.InstrShare
	}
	return 0
}

func cell(r *core.Report, name string) string {
	f, ok := r.Function(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%5.1f%% @ %5.1f%%", f.InstrShare*100, f.Efficiency*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tfdiff:", err)
	os.Exit(1)
}
