package staticmem

import (
	"bytes"
	"encoding/json"
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

// TestClassification checks the stride classes, segment claims and warp-32
// bounds over one straight-line function exercising every class.
func TestClassification(t *testing.T) {
	pb := ir.NewBuilder("classify")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b0 := f.NewBlock("entry")
	b0.Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(1))                     // i0: store arg0           -> broadcast
	b0.Mov(ir.Rg(ir.R(3)), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8))  // i1: load arg0+8*tid      -> coalesced
	b0.Mov(ir.Rg(ir.R(1)), ir.Rg(ir.TID))                        // i2
	b0.Shl(ir.Rg(ir.R(1)), ir.Imm(3))                            // i3: r1 = 8*tid
	b0.Mov(ir.MemIdx(ir.R(0), ir.R(1), 8, 0, 8), ir.Rg(ir.R(3))) // i4: store arg0+64*tid    -> strided
	b0.Mov(ir.Mem(ir.SP, -8, 8), ir.Imm(7))                      // i5: store sp-8           -> strided (implicit sp stride), stack
	b0.Mov(ir.Rg(ir.R(2)), ir.Mem(ir.R(0), 0, 8))                // i6: load arg0            -> broadcast; r2 becomes unknown
	b0.Mov(ir.Mem(ir.R(2), 0, 8), ir.Imm(1))                     // i7: store through a load -> scattered
	b0.Add(ir.Mem(ir.R(0), 16, 4), ir.Imm(1))                    // i8: RMW arg0+16          -> broadcast, both directions
	b0.Ret()
	r := Analyze(pb.MustBuild())

	if len(r.Sites) != 7 {
		t.Fatalf("sites = %d, want 7", len(r.Sites))
	}
	want := []struct {
		instr   uint16
		class   string
		stride  int64
		known   bool
		segment string
		bound   int
	}{
		{0, ClassBroadcast, 0, true, SegmentOther, 2},
		{1, ClassCoalesced, 8, true, SegmentOther, 9}, // maxSectors(8*31+8) = 9
		{4, ClassStrided, 64, true, SegmentOther, 64}, // span >= lane bound 32*2
		{5, ClassStrided, int64(vm.StackSize), true, SegmentStack, 64},
		{6, ClassBroadcast, 0, true, SegmentOther, 2},
		{7, ClassScattered, 0, false, SegmentUnknown, 64},
		{8, ClassBroadcast, 0, true, SegmentOther, 4}, // RMW: load + store directions
	}
	for _, w := range want {
		si, ok := r.SiteAt(0, 0, w.instr)
		if !ok {
			t.Fatalf("i%d: no site", w.instr)
		}
		s := &r.Sites[si]
		if s.Class != w.class || s.StrideKnown != w.known || (w.known && s.Stride != w.stride) ||
			s.Segment != w.segment || s.Warp32Bound != w.bound {
			t.Errorf("i%d = {class %s stride %d/%v seg %s bound %d}, want {%s %d/%v %s %d}",
				w.instr, s.Class, s.Stride, s.StrideKnown, s.Segment, s.Warp32Bound,
				w.class, w.stride, w.known, w.segment, w.bound)
		}
	}
	if s := &r.Sites[r.mustSite(t, 8)]; !s.Load || !s.Store {
		t.Errorf("RMW site load/store = %v/%v, want true/true", s.Load, s.Store)
	}
	if r.Broadcast != 3 || r.Coalesced != 1 || r.Strided != 2 || r.Scattered != 1 {
		t.Errorf("totals = %d/%d/%d/%d, want 3/1/2/1", r.Broadcast, r.Coalesced, r.Strided, r.Scattered)
	}
}

func (r *Result) mustSite(t *testing.T, instr uint16) int {
	t.Helper()
	si, ok := r.SiteAt(0, 0, instr)
	if !ok {
		t.Fatalf("i%d: no site", instr)
	}
	return si
}

// TestTxBound checks the symbolic sector math directly, including the
// formation and divergence widenings.
func TestTxBound(t *testing.T) {
	cases := []struct {
		name       string
		s          Site
		warp       int
		contiguous bool
		want       int
	}{
		{"broadcast8", Site{Load: true, Size: 8, Class: ClassBroadcast}, 32, true, 2},
		{"broadcast1", Site{Load: true, Size: 1, Class: ClassBroadcast}, 32, true, 1},
		{"broadcast divergent stays tight", Site{Load: true, Size: 8, Class: ClassBroadcast, Divergent: true}, 32, true, 2},
		{"coalesced8", Site{Load: true, Size: 8, Class: ClassCoalesced, StrideKnown: true, Stride: 8}, 32, true, 9},
		{"coalesced negative stride", Site{Load: true, Size: 8, Class: ClassCoalesced, StrideKnown: true, Stride: -8}, 32, true, 9},
		{"coalesced width1", Site{Load: true, Size: 8, Class: ClassCoalesced, StrideKnown: true, Stride: 8}, 1, true, 2},
		{"coalesced divergent widens", Site{Load: true, Size: 8, Class: ClassCoalesced, StrideKnown: true, Stride: 8, Divergent: true}, 32, true, 64},
		{"coalesced scattered formation", Site{Load: true, Size: 8, Class: ClassCoalesced, StrideKnown: true, Stride: 8}, 32, false, 64},
		{"strided64", Site{Store: true, Size: 8, Class: ClassStrided, StrideKnown: true, Stride: 64}, 4, true, 8}, // maxSectors(64*3+8)=8 == lane
		{"scattered", Site{Load: true, Size: 4, Class: ClassScattered}, 32, true, 64},
		{"rmw doubles", Site{Load: true, Store: true, Size: 4, Class: ClassBroadcast}, 32, true, 4},
	}
	for _, c := range cases {
		if got := c.s.TxBound(c.warp, c.contiguous); got != c.want {
			t.Errorf("%s: TxBound(%d, %v) = %d, want %d", c.name, c.warp, c.contiguous, got, c.want)
		}
	}
}

// meldProg builds a tid-divergent diamond whose isomorphic arms each hold one
// store addressed by mkAddr(base register).
func meldProg(name string, mkAddr func(base ir.Reg) ir.Operand) *ir.Program {
	pb := ir.NewBuilder(name)
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, els)
	then.Mov(mkAddr(ir.R(1)), ir.Imm(3))
	then.Jmp(join)
	els.Mov(mkAddr(ir.R(2)), ir.Imm(3))
	els.Jmp(join)
	join.Ret()
	return pb.MustBuild()
}

// TestMeldVeto: an isomorphic-arms meld candidate whose arm holds a broadcast
// store must be vetoed (melding would issue the access on every lane), while
// strided arms stay meldable.
func TestMeldVeto(t *testing.T) {
	veto := meldProg("meld-veto", func(base ir.Reg) ir.Operand {
		return ir.Mem(base, 0, 8) // argN: broadcast
	})
	// Without the oracle the candidate melds.
	if r := staticsimt.Analyze(veto, staticsimt.Options{}); r.Meldable != 1 {
		t.Fatalf("baseline meldable = %d, want 1", r.Meldable)
	}
	r := Analyze(veto)
	if r.MeldsRejectedMem != 1 {
		t.Fatalf("melds rejected = %d, want 1", r.MeldsRejectedMem)
	}

	ok := meldProg("meld-ok", func(base ir.Reg) ir.Operand {
		return ir.MemIdx(base, ir.TID, 8, 0, 4) // stride 8 > size 4: strided
	})
	r = Analyze(ok)
	if r.MeldsRejectedMem != 0 {
		t.Fatalf("strided arms rejected %d meld(s), want 0", r.MeldsRejectedMem)
	}
}

// TestDivergentWidening: sites inside a divergent branch's influence region
// are widened to the per-lane bound.
func TestDivergentWidening(t *testing.T) {
	pb := ir.NewBuilder("widen")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	join := f.NewBlock("join")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, join)
	then.Mov(ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8), ir.Imm(1)) // coalesced, but under divergence
	then.Jmp(join)
	join.Ret()
	r := Analyze(pb.MustBuild())
	si, ok := r.SiteAt(0, 1, 0)
	if !ok {
		t.Fatal("arm store not profiled")
	}
	s := &r.Sites[si]
	if !s.Divergent || s.Class != ClassCoalesced {
		t.Fatalf("site = {class %s divergent %v}, want coalesced+divergent", s.Class, s.Divergent)
	}
	if s.Warp32Bound != 64 { // widened to 32 lanes * maxSectors(8)
		t.Fatalf("warp32 bound = %d, want 64", s.Warp32Bound)
	}
	if r.DivergentSites != 1 {
		t.Fatalf("divergent sites = %d, want 1", r.DivergentSites)
	}
}

// TestUnreachablePlaceholders: phantom-function sites keep worst-case entries
// so the table stays aligned with dynamic keying.
func TestUnreachablePlaceholders(t *testing.T) {
	pb := ir.NewBuilder("phantom")
	mainF := pb.NewFunc("main")
	deadF := pb.NewFunc("dead")
	pb.SetEntry(mainF)
	mainF.NewBlock("entry").Ret()
	d0 := deadF.NewBlock("entry")
	d0.Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(1))
	d0.Ret()
	r := Analyze(pb.MustBuild())
	si, ok := r.SiteAt(1, 0, 0)
	if !ok {
		t.Fatal("phantom site missing from the table")
	}
	s := &r.Sites[si]
	if !s.Unreachable || s.Class != ClassScattered || s.Segment != SegmentUnknown {
		t.Fatalf("phantom site = %+v, want unreachable scattered/unknown", s)
	}
	if r.UnreachableSites != 1 || r.Scattered != 0 {
		t.Fatalf("totals: unreachable %d scattered %d, want 1/0", r.UnreachableSites, r.Scattered)
	}
}

// TestDeterminism: rendered and JSON output must be byte-identical across
// repeated analyses of every built-in workload — the tfstatic -mem -json
// encode path runs through exactly this marshalling.
func TestDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		inst, err := w.Instantiate(workloads.Config{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var prev []byte
		for round := 0; round < 2; round++ {
			r := Analyze(inst.Prog)
			var buf bytes.Buffer
			r.Render(&buf, true)
			js, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("%s: marshal: %v", w.Name, err)
			}
			cur := append(buf.Bytes(), js...)
			if round > 0 && !bytes.Equal(prev, cur) {
				t.Fatalf("%s: non-deterministic output across runs", w.Name)
			}
			prev = cur
		}
	}
}
