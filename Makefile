GO ?= go

.PHONY: build vet test test-race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages the parallel analyzer pipeline touches: the
# per-warp replay workers, the session cache, the experiment cell pools, and
# the sweep/pool plumbing they are built on.
test-race:
	$(GO) test -race ./internal/simt/... ./internal/core/... ./internal/report/... ./internal/pool/... ./internal/gpusim/...

# Run the key analyzer benchmarks and record the perf trajectory in
# BENCH_analyzer.json (ns/op, allocs/op, serial-vs-parallel speedup).
bench:
	scripts/bench.sh

check: build vet test test-race
