package gpusim

import (
	"fmt"

	"threadfuser/internal/simtrace"
)

// SweepPoint is one machine configuration plus its simulation result.
type SweepPoint struct {
	Label  string
	Config Config
	Result *Result
}

// Sweep runs the same kernel trace across a set of machine configurations —
// the design-space exploration of the paper's section V-B ("architects can
// … evaluate alternative SIMT accelerator designs"). Points are labelled by
// each configuration's Name.
func Sweep(kt *simtrace.KernelTrace, cfgs []Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(cfgs))
	for _, cfg := range cfgs {
		res, err := Run(kt, cfg)
		if err != nil {
			return nil, fmt.Errorf("gpusim: sweep %s: %w", cfg.Name, err)
		}
		out = append(out, SweepPoint{Label: cfg.Name, Config: cfg, Result: res})
	}
	return out, nil
}

// ScaleSweep generates a family of configurations scaling the SM count of a
// base machine (1, 2, 4, ... up to maxSMs) — the "how many cores does this
// workload actually need" question for CPU-adjacent SIMT designs.
func ScaleSweep(base Config, maxSMs int) []Config {
	var cfgs []Config
	for n := 1; n <= maxSMs; n *= 2 {
		c := base
		c.NumSMs = n
		c.Name = fmt.Sprintf("%s-%dsm", base.Name, n)
		cfgs = append(cfgs, c)
	}
	return cfgs
}
