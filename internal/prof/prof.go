// Package prof wires the standard runtime profilers into the one-shot CLIs.
// The replay fast path lives or dies by its inner-loop profile, so tfanalyze
// and tfreport expose -cpuprofile/-memprofile directly: an engineer chasing a
// throughput regression profiles the real tool on the real trace instead of
// reconstructing the workload inside a micro-benchmark.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that ends it and, when mem is non-empty, writes an allocation
// profile. The stop function is idempotent, so callers can both defer it and
// invoke it on early-exit error paths; profile-write failures are reported on
// stderr rather than returned, because by then the tool's real work is done.
func Start(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing CPU profile:", err)
			}
		}
		if mem != "" {
			writeHeapProfile(mem)
		}
	}, nil
}

// writeHeapProfile snapshots live allocations after a GC, so the profile
// reflects retained memory rather than whatever garbage the last replay
// window left behind.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
	}
}
