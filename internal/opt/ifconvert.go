package opt

import "threadfuser/internal/ir"

// IfConvert flattens branch diamonds into straight-line cmov code, the
// divergence-removing transform the paper blames for the analyzer's O3
// optimism. A diamond
//
//	A: ... ; jcc c, T, F
//	T: t1..tn ; jmp J
//	F: f1..fm ; jmp J
//
// becomes
//
//	A: ... ; t1'..tn' ; f1'..fm' ; cmov(c) selects ; jmp J
//
// where both sides' instructions are renamed to write scratch registers and
// cmovs merge the results by the branch condition. Conversion requires both
// sides to be speculation-safe: register/load-only (no stores, calls, locks,
// I/O), no flag writers (the selects need A's flags), and within the size
// budget. Loads are speculated, as compilers do — the converted code issues
// both sides' loads, which is visible in the memory metrics.
//
// It returns the number of diamonds converted.
func IfConvert(p *ir.Program, budget int) int {
	return ifConvert(p, budget, false)
}

// IfConvertStores is the -O3 aggressive variant: branch sides may contain
// plain stores, which become conditional (cmov-to-memory) stores. The
// untaken path still touches the address (reading and rewriting the old
// value), the observable cost of select/masked-store if-conversion — extra
// memory traffic on the CPU binary that the GPU build does not have, one of
// the reasons the paper's O3 memory estimates drift.
func IfConvertStores(p *ir.Program, budget int) int {
	return ifConvert(p, budget, true)
}

func ifConvert(p *ir.Program, budget int, stores bool) int {
	converted := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if convertDiamond(f, b, budget, stores) {
				converted++
			}
		}
	}
	return converted
}

// scratchBase..NumRegs-3 are the temporaries the renamer may allocate; the
// workload register conventions leave r16..r29 unused.
const scratchBase = ir.Reg(16)

func convertDiamond(f *ir.Function, b *ir.Block, budget int, stores bool) bool {
	term := b.Terminator()
	if term.Op != ir.OpJcc || term.Target == term.Fall ||
		term.Target == b.ID || term.Fall == b.ID {
		return false
	}
	t := f.Blocks[term.Target]
	fb := f.Blocks[term.Fall]
	tJoin, tOK := diamondSide(t, budget, stores)
	fJoin, fOK := diamondSide(fb, budget, stores)

	// One-sided hammock "if (c) { T }": the taken side rejoins at the
	// fall-through block.
	if tOK && tJoin == term.Fall {
		return convertHammock(b, t, term.Cond, term.Fall, stores)
	}
	// Inverted hammock "if (!c) { F }".
	if fOK && fJoin == term.Target {
		return convertHammock(b, fb, negate(term.Cond), term.Target, stores)
	}
	if !tOK || !fOK || tJoin != fJoin {
		return false
	}
	join := tJoin

	nextScratch := scratchBase
	alloc := func() (ir.Reg, bool) {
		if nextScratch >= ir.TID {
			return 0, false
		}
		r := nextScratch
		nextScratch++
		return r, true
	}

	// Rename both sides; collect (original, temp) pairs for the selects.
	tInstrs, tSel, ok := renameSide(t, alloc, term.Cond, stores)
	if !ok {
		return false
	}
	fInstrs, fSel, ok := renameSide(fb, alloc, negate(term.Cond), stores)
	if !ok {
		return false
	}

	out := append([]ir.Instr{}, b.Instrs[:len(b.Instrs)-1]...)
	out = append(out, tInstrs...)
	out = append(out, fInstrs...)
	for _, s := range tSel {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: term.Cond, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	notC := negate(term.Cond)
	for _, s := range fSel {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: notC, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	out = append(out, ir.Instr{Op: ir.OpJmp, Target: join})
	b.Instrs = out
	return true
}

// convertHammock flattens a one-sided diamond: side executes speculatively
// into temps and cmov(cond) commits it; control falls through to join.
func convertHammock(b, side *ir.Block, cond ir.Cond, join ir.BlockID, stores bool) bool {
	nextScratch := scratchBase
	alloc := func() (ir.Reg, bool) {
		if nextScratch >= ir.TID {
			return 0, false
		}
		r := nextScratch
		nextScratch++
		return r, true
	}
	instrs, sels, ok := renameSide(side, alloc, cond, stores)
	if !ok {
		return false
	}
	out := append([]ir.Instr{}, b.Instrs[:len(b.Instrs)-1]...)
	out = append(out, instrs...)
	for _, s := range sels {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: cond, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	out = append(out, ir.Instr{Op: ir.OpJmp, Target: join})
	b.Instrs = out
	return true
}

// diamondSide checks that a block is a convertible branch side — at most
// budget speculation-safe instructions ending in an unconditional jump —
// and returns its join target.
func diamondSide(b *ir.Block, budget int, stores bool) (ir.BlockID, bool) {
	if b.Terminator().Op != ir.OpJmp {
		return 0, false
	}
	body := b.Instrs[: len(b.Instrs)-1 : len(b.Instrs)-1]
	if len(body) > budget {
		return 0, false
	}
	for i := range body {
		in := &body[i]
		switch in.Op {
		case ir.OpCmp, ir.OpTest, ir.OpFCmp, ir.OpCmov,
			ir.OpLock, ir.OpUnlock, ir.OpIO, ir.OpSpin:
			return 0, false // flag writers/readers and side effects
		}
		if in.Dst.IsMem() {
			// Plain stores are convertible only in aggressive mode;
			// read-modify-write memory destinations never are.
			if !stores || in.Op != ir.OpMov {
				return 0, false
			}
		}
		if in.Dst.Kind == ir.OpndReg && (in.Dst.Reg == ir.SP || in.Dst.Reg == ir.TID) {
			return 0, false
		}
	}
	return b.Terminator().Target, true
}

type sel struct{ orig, temp ir.Reg }

// renameSide rewrites a side's instructions so every register it defines is
// replaced by a fresh scratch register (reads of a renamed register within
// the side follow the rename; reads of untouched registers see the original
// values). It returns the rewritten instructions and the select list.
func renameSide(b *ir.Block, alloc func() (ir.Reg, bool), storeCond ir.Cond, stores bool) ([]ir.Instr, []sel, bool) {
	body := b.Instrs[:len(b.Instrs)-1]
	rename := map[ir.Reg]ir.Reg{}
	var sels []sel
	out := make([]ir.Instr, 0, len(body)+2)

	mapReg := func(r ir.Reg) ir.Reg {
		if nr, ok := rename[r]; ok {
			return nr
		}
		return r
	}
	mapOperandRead := func(o ir.Operand) ir.Operand {
		switch o.Kind {
		case ir.OpndReg:
			o.Reg = mapReg(o.Reg)
		case ir.OpndMem:
			o.Mem.Base = mapReg(o.Mem.Base)
			if o.Mem.HasIndex {
				o.Mem.Index = mapReg(o.Mem.Index)
			}
		}
		return o
	}

	for _, in := range body {
		in.Src = mapOperandRead(in.Src)
		if in.Dst.IsMem() {
			// Aggressive mode: a plain store becomes a conditional store
			// (cmov to memory) guarded by the side's condition. The
			// address registers are reads and follow the renaming.
			if !stores || in.Op != ir.OpMov {
				return nil, nil, false
			}
			in.Op = ir.OpCmov
			in.Cond = storeCond
			in.Dst = mapOperandRead(in.Dst)
			out = append(out, in)
			continue
		}
		if in.Dst.Kind != ir.OpndReg {
			// Only register destinations survive diamondSide, plus
			// OpndNone for Nop.
			if in.Dst.Kind != ir.OpndNone {
				return nil, nil, false
			}
			out = append(out, in)
			continue
		}
		orig := in.Dst.Reg
		readsDst := in.Op != ir.OpMov && in.Op != ir.OpLea
		cur := mapReg(orig)
		temp, known := rename[orig]
		if !known {
			var ok bool
			temp, ok = alloc()
			if !ok {
				return nil, nil, false
			}
			if readsDst {
				// Seed the temp with the original value so RMW ops see it.
				out = append(out, ir.Instr{Op: ir.OpMov, Dst: ir.Rg(temp), Src: ir.Rg(cur)})
			}
			rename[orig] = temp
			sels = append(sels, sel{orig: orig, temp: temp})
		}
		in.Dst = ir.Rg(temp)
		out = append(out, in)
	}
	return out, sels, true
}

// negate returns the complementary condition.
func negate(c ir.Cond) ir.Cond {
	switch c {
	case ir.CondEQ:
		return ir.CondNE
	case ir.CondNE:
		return ir.CondEQ
	case ir.CondLT:
		return ir.CondGE
	case ir.CondGE:
		return ir.CondLT
	case ir.CondLE:
		return ir.CondGT
	case ir.CondGT:
		return ir.CondLE
	case ir.CondULT:
		return ir.CondUGE
	case ir.CondUGE:
		return ir.CondULT
	}
	return c
}
