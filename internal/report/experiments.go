package report

import (
	"fmt"
	"math"

	"threadfuser/internal/core"
	"threadfuser/internal/cpusim"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/opt"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/stats"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// Scale configures experiment sizes. The zero value uses each workload's
// reduced default; Full uses the paper's Table-I thread counts.
type Scale struct {
	// Threads overrides every workload's thread count when non-zero.
	Threads int
	// Full runs each workload at its Table-I thread count.
	Full bool
	// Seed drives input generation.
	Seed int64
}

func (s Scale) config(w *workloads.Workload) workloads.Config {
	cfg := workloads.Config{Seed: s.Seed, Threads: s.Threads}
	if s.Full && w.PaperThreads > 0 {
		cfg.Threads = w.PaperThreads
	}
	return cfg
}

// analyze traces and analyzes one workload.
func analyze(w *workloads.Workload, s Scale, warpSize int, locks bool) (*core.Report, *trace.Trace, *workloads.Instance, error) {
	inst, err := w.Instantiate(s.config(w))
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := inst.Trace()
	if err != nil {
		return nil, nil, nil, err
	}
	opts := core.Defaults()
	opts.WarpSize = warpSize
	opts.EmulateLocks = locks
	rep, err := core.Analyze(tr, opts)
	return rep, tr, inst, err
}

// ---------------------------------------------------------------- Figure 1

// Fig1Row is one workload's efficiency at the three warp widths.
type Fig1Row struct {
	Workload string
	Suite    string
	Eff8     float64
	Eff16    float64
	Eff32    float64
}

// Fig1Data is the figure-1 dataset.
type Fig1Data struct {
	Rows []Fig1Row
}

// Fig1 estimates SIMT efficiency for the 36 MIMD applications at warp
// sizes 8, 16 and 32 (the paper's headline figure).
func Fig1(s Scale) (*Fig1Data, error) {
	d := &Fig1Data{}
	for _, w := range workloads.TableI() {
		row := Fig1Row{Workload: w.Name, Suite: w.Suite}
		inst, err := w.Instantiate(s.config(w))
		if err != nil {
			return nil, err
		}
		tr, err := inst.Trace()
		if err != nil {
			return nil, err
		}
		for _, ws := range []int{8, 16, 32} {
			opts := core.Defaults()
			opts.WarpSize = ws
			rep, err := core.Analyze(tr, opts)
			if err != nil {
				return nil, err
			}
			switch ws {
			case 8:
				row.Eff8 = rep.Efficiency
			case 16:
				row.Eff16 = rep.Efficiency
			case 32:
				row.Eff32 = rep.Efficiency
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Render formats the figure-1 series.
func (d *Fig1Data) Render() string {
	t := newTable("workload", "suite", "eff@8", "eff@16", "eff@32")
	for _, r := range d.Rows {
		t.add(r.Workload, r.Suite, pct(r.Eff8), pct(r.Eff16), pct(r.Eff32))
	}
	return "Figure 1: Estimated SIMT efficiency, warp sizes 8/16/32\n" + t.String()
}

// ---------------------------------------------------------------- Table I

// Table1Row is one catalog entry.
type Table1Row struct {
	Workload     string
	Suite        string
	SIMTThreads  int
	GPUTwin      bool
	Microservice bool
	Desc         string
}

// Table1Data is the workload catalog.
type Table1Data struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's Table I.
func Table1() *Table1Data {
	d := &Table1Data{}
	for _, w := range workloads.TableI() {
		d.Rows = append(d.Rows, Table1Row{
			Workload:     w.Name,
			Suite:        w.Suite,
			SIMTThreads:  w.PaperThreads,
			GPUTwin:      w.HasGPUImpl,
			Microservice: w.Microservice,
			Desc:         w.Desc,
		})
	}
	return d
}

// Render formats Table I.
func (d *Table1Data) Render() string {
	t := newTable("workload", "suite", "#SIMT threads", "GPU twin", "usvc")
	for _, r := range d.Rows {
		twin, usvc := "", ""
		if r.GPUTwin {
			twin = "yes"
		}
		if r.Microservice {
			usvc = "yes"
		}
		t.add(r.Workload, r.Suite, fmt.Sprintf("%d", r.SIMTThreads), twin, usvc)
	}
	return "Table I: Studied workloads\n" + t.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is one (workload, optimization level) sample.
type Fig5Point struct {
	Workload  string
	Level     opt.Level
	Predicted float64
	Hardware  float64
}

// Fig5LevelStats summarizes one optimization level's agreement.
type Fig5LevelStats struct {
	Level   opt.Level
	Pearson float64
	MAE     float64
}

// Fig5Data holds either the efficiency (5a) or memory (5b) correlation.
type Fig5Data struct {
	Metric string // "SIMT efficiency" or "heap transactions"
	Points []Fig5Point
	Levels []Fig5LevelStats
	// ErrStdDev and WithinOneSD mirror the paper's consistency stats
	// ("std value is approximately 6% ... 83% within one standard
	// deviation").
	ErrStdDev   float64
	WithinOneSD float64
}

// Fig5a correlates analyzer-predicted SIMT efficiency against the lockstep
// hardware oracle across gcc-style optimization levels, for the 11
// correlation workloads (paper figure 5a).
func Fig5a(s Scale) (*Fig5Data, error) {
	return fig5(s, "SIMT efficiency", func(rep *core.Report) float64 {
		return rep.Efficiency
	}, func(hw *hwMeasurement) float64 {
		return hw.efficiency
	}, false)
}

// Fig5b correlates predicted total 32-byte heap transactions against the
// oracle (paper figure 5b; the paper's plot is log-log, so the Pearson
// coefficient is computed on log10 values).
func Fig5b(s Scale) (*Fig5Data, error) {
	return fig5(s, "heap transactions", func(rep *core.Report) float64 {
		return float64(rep.HeapTx)
	}, func(hw *hwMeasurement) float64 {
		return float64(hw.heapTx)
	}, true)
}

type hwMeasurement struct {
	efficiency float64
	heapTx     uint64
}

func fig5(s Scale, metric string, pred func(*core.Report) float64, ref func(*hwMeasurement) float64, logScale bool) (*Fig5Data, error) {
	d := &Fig5Data{Metric: metric}
	perLevel := map[opt.Level][2][]float64{}
	var allErrs []float64

	for _, w := range workloads.Correlation() {
		inst, err := w.Instantiate(s.config(w))
		if err != nil {
			return nil, err
		}
		// Hardware oracle: lockstep execution of the nvcc-like build.
		hwInst := inst.WithProgram(opt.HardwareBuild(inst.Prog))
		hwRes, err := hwInst.RunHardware(32, nil)
		if err != nil {
			return nil, fmt.Errorf("report: %s oracle: %w", w.Name, err)
		}
		hw := &hwMeasurement{
			efficiency: hwRes.Efficiency(),
			heapTx:     hwRes.Total().HeapTx,
		}

		for _, lvl := range opt.Levels {
			tr, err := inst.WithProgram(opt.Apply(inst.Prog, lvl)).Trace()
			if err != nil {
				return nil, err
			}
			rep, err := core.Analyze(tr, core.Defaults())
			if err != nil {
				return nil, err
			}
			p := Fig5Point{
				Workload:  w.Name,
				Level:     lvl,
				Predicted: pred(rep),
				Hardware:  ref(hw),
			}
			d.Points = append(d.Points, p)
			pair := perLevel[lvl]
			x, y := p.Predicted, p.Hardware
			if logScale {
				x, y = math.Log10(math.Max(x, 1)), math.Log10(math.Max(y, 1))
			}
			pair[0] = append(pair[0], x)
			pair[1] = append(pair[1], y)
			perLevel[lvl] = pair
			if p.Hardware != 0 {
				allErrs = append(allErrs, math.Abs(p.Predicted-p.Hardware)/p.Hardware)
			}
		}
	}
	for _, lvl := range opt.Levels {
		pair := perLevel[lvl]
		r, err := stats.Pearson(pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		var mae float64
		if logScale {
			// Relative error on the raw metric, like the paper's 17%.
			var preds, refs []float64
			for _, p := range d.Points {
				if p.Level == lvl {
					preds = append(preds, p.Predicted)
					refs = append(refs, p.Hardware)
				}
			}
			mae, _ = stats.MAE(preds, refs)
		} else {
			var preds, refs []float64
			for _, p := range d.Points {
				if p.Level == lvl {
					preds = append(preds, p.Predicted)
					refs = append(refs, p.Hardware)
				}
			}
			mae, _ = stats.MAEAbs(preds, refs)
		}
		d.Levels = append(d.Levels, Fig5LevelStats{Level: lvl, Pearson: r, MAE: mae})
	}
	d.ErrStdDev = stats.StdDev(allErrs)
	d.WithinOneSD = stats.WithinOneStdDev(allErrs)
	return d, nil
}

// Render formats a figure-5 dataset.
func (d *Fig5Data) Render() string {
	t := newTable("level", "Pearson corr", "MAE")
	for _, l := range d.Levels {
		t.add(l.Level.String(), f3(l.Pearson), pct(l.MAE))
	}
	pts := newTable("workload", "level", "predicted", "hardware")
	for _, p := range d.Points {
		pts.add(p.Workload, p.Level.String(), f3(p.Predicted), f3(p.Hardware))
	}
	return fmt.Sprintf("Figure 5 (%s) correlation vs hardware oracle\n%s\nerror std dev %s, %s of samples within one std dev\n\n%s",
		d.Metric, t.String(), pct(d.ErrStdDev), pct(d.WithinOneSD), pts.String())
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one workload's projected speedup.
type Fig6Row struct {
	Workload string
	// TFSpeedup is the CPU-trace path (ThreadFuser warp traces through
	// the SIMT simulator, normalized to the multicore CPU model).
	TFSpeedup float64
	// CUDASpeedup is the native-GPU-trace path, present for the 11
	// correlation workloads (0 otherwise).
	CUDASpeedup float64
	GPUCycles   uint64
	CPUCycles   uint64
}

// Fig6Data is the speedup projection dataset.
type Fig6Data struct {
	Rows []Fig6Row
	// Correlation between the two series over the workloads that have
	// both (the paper quotes 0.97).
	SpeedupCorrelation float64
	// ExecTimeMAE is the relative cycle error between the ThreadFuser and
	// native paths (the paper quotes 33% execution-time error).
	ExecTimeMAE float64
}

// Fig6 projects speedups for the Table-I workloads using the SIMT timing
// simulator with the RTX-3070-like configuration, normalized to the
// multicore CPU baseline; the 11 correlation workloads also run the
// native-trace path (paper figure 6). Following the paper's methodology,
// the CPU side is the -O3 build ("compilation is carried out using gcc with
// the -O3 optimization"), while the native path runs the GPU-toolchain
// build — the toolchain gap is what separates the two series.
func Fig6(s Scale) (*Fig6Data, error) {
	d := &Fig6Data{}
	gcfg := gpusim.RTX3070()
	ccfg := cpusim.Xeon20()
	var tfS, cuS, tfC, cuC []float64

	for _, w := range workloads.TableI() {
		inst, err := w.Instantiate(s.config(w))
		if err != nil {
			return nil, err
		}
		cpuInst := inst.WithProgram(opt.Apply(inst.Prog, opt.O3))
		tr, err := cpuInst.Trace()
		if err != nil {
			return nil, err
		}
		kt, err := simtrace.Generate(cpuInst.Prog, tr, 32)
		if err != nil {
			return nil, err
		}
		g, err := gpusim.Run(kt, gcfg)
		if err != nil {
			return nil, fmt.Errorf("report: %s gpusim: %w", w.Name, err)
		}
		c, err := cpusim.Run(tr, ccfg)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{
			Workload:  w.Name,
			GPUCycles: g.Cycles,
			CPUCycles: c.Cycles,
			TFSpeedup: float64(c.Cycles) / float64(g.Cycles),
		}
		if w.HasGPUImpl {
			// Native path: lockstep-collected ("nvbit") trace of the
			// nvcc-like hardware build.
			hwInst := inst.WithProgram(opt.HardwareBuild(inst.Prog))
			p2, args2, err := hwInst.NewProcess()
			if err != nil {
				return nil, err
			}
			nkt, err := simtrace.FromHardware(p2, hwInst.Threads(), 32, args2)
			if err != nil {
				return nil, err
			}
			ng, err := gpusim.Run(nkt, gcfg)
			if err != nil {
				return nil, err
			}
			row.CUDASpeedup = float64(c.Cycles) / float64(ng.Cycles)
			tfS = append(tfS, row.TFSpeedup)
			cuS = append(cuS, row.CUDASpeedup)
			tfC = append(tfC, float64(g.Cycles))
			cuC = append(cuC, float64(ng.Cycles))
		}
		d.Rows = append(d.Rows, row)
	}
	var err error
	if d.SpeedupCorrelation, err = stats.Pearson(tfS, cuS); err != nil {
		return nil, err
	}
	if d.ExecTimeMAE, err = stats.MAE(tfC, cuC); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the figure-6 series.
func (d *Fig6Data) Render() string {
	t := newTable("workload", "TF speedup", "CUDA speedup", "gpu cycles", "cpu cycles")
	for _, r := range d.Rows {
		cuda := ""
		if r.CUDASpeedup != 0 {
			cuda = f2(r.CUDASpeedup)
		}
		t.add(r.Workload, f2(r.TFSpeedup), cuda, count(r.GPUCycles), count(r.CPUCycles))
	}
	return fmt.Sprintf("Figure 6: Projected speedup vs multicore CPU (RTX-3070-like config)\n%s\nspeedup correlation (11 GPU twins): %s   exec-time MAE: %s\n",
		t.String(), f3(d.SpeedupCorrelation), pct(d.ExecTimeMAE))
}
