package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// uploadCases are the malformed .tft shapes an internet-facing upload
// handler must survive: each must produce a 4xx JSON error — never a panic,
// never a 5xx, and never a leaked admission or tenant slot.
func uploadCases(t *testing.T) map[string][]byte {
	t.Helper()
	v2 := tftBytes(t, testTrace(), false)
	v3 := tftBytes(t, testTrace(), true)
	return map[string][]byte{
		"empty body":         {},
		"garbage":            []byte("this is not a trace format"),
		"magic only":         v2[:4],
		"v2 cut mid-stream":  v2[:len(v2)/2],
		"v3 cut mid-trailer": v3[:len(v3)-6],
		"v3 cut mid-footer":  v3[:len(v3)-20],
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	if i < len(c) {
		c[i] ^= 0xff
	}
	return c
}

// assertNoLeak verifies every budget returned to zero after requests
// completed.
func assertNoLeak(t *testing.T, srv *Server, when string) {
	t.Helper()
	if q := srv.QueueInFlight(); q != 0 {
		t.Errorf("%s: admission queue holds %d slots", when, q)
	}
	if n := srv.TenantInFlight(DefaultTenant); n != 0 {
		t.Errorf("%s: tenant budget holds %d slots", when, n)
	}
	if n := srv.engine.InUse(); n != 0 {
		t.Errorf("%s: engine holds %d slots", when, n)
	}
}

// TestMalformedUploadsRejectedWithoutLeaks drives every malformed shape at
// every trace-upload endpoint.
func TestMalformedUploadsRejectedWithoutLeaks(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 2})
	endpoints := []string{"/v1/analyze", "/v1/lint", "/v1/check"}
	for name, data := range uploadCases(t) {
		for _, ep := range endpoints {
			resp, err := ts.Client().Post(ts.URL+ep, "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s %s: %v", name, ep, err)
			}
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Errorf("%s %s: status %d (%s), want 4xx", name, ep, resp.StatusCode, body.String())
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s %s: error content-type %q", name, ep, ct)
			}
			if !strings.Contains(body.String(), `"error"`) {
				t.Errorf("%s %s: error body carries no error field: %s", name, ep, body.String())
			}
			assertNoLeak(t, srv, name+" "+ep)
		}
	}
}

// TestUploadContentLengthMismatch: a body shorter than its declared
// Content-Length is a truncated upload — 400, not a hang or a 5xx. Driven
// through ServeHTTP directly since a real client would refuse to send it.
func TestUploadContentLengthMismatch(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	data := tftBytes(t, testTrace(), true)
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(data))
	req.ContentLength = int64(len(data)) + 100
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("short body under long Content-Length: status %d (%s), want 400", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "truncated") {
		t.Fatalf("error does not name the truncation: %s", w.Body)
	}
	assertNoLeak(t, srv, "content-length mismatch")
}

// TestUploadTooLarge: bodies over the configured cap get 413 and leak
// nothing.
func TestUploadTooLarge(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 2, MaxUploadBytes: 1024})
	big := make([]byte, 64<<10)
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d (%s), want 413", resp.StatusCode, body.String())
	}
	assertNoLeak(t, srv, "oversized upload")
}

// FuzzUpload hammers the analyze upload handler with arbitrary bytes. The
// invariants are the handler's whole contract: no panic, no 5xx, and every
// admission/tenant/engine slot returned.
func FuzzUpload(f *testing.F) {
	v2 := tftBytes(f, testTrace(), false)
	v3 := tftBytes(f, testTrace(), true)
	f.Add([]byte{})
	f.Add([]byte("not a trace"))
	f.Add(v2)
	f.Add(v3)
	f.Add(v2[:len(v2)/2])
	f.Add(v3[:len(v3)-6])  // cut mid-trailer
	f.Add(v3[:len(v3)-20]) // cut mid-footer
	f.Add(flipByte(v3, len(v3)-10))

	srv := New(Config{
		MaxConcurrent:  2,
		MaxUploadBytes: 1 << 20,
		RequestTimeout: 30 * time.Second,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest("POST", "/v1/analyze?warp=4", bytes.NewReader(data))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code >= 500 {
			t.Fatalf("upload of %d bytes produced status %d: %s", len(data), w.Code, w.Body)
		}
		assertNoLeak(t, srv, "after fuzz upload")
	})
}
