// Package serve implements tfserve, the long-running multi-tenant analysis
// service: one engine behind an HTTP/JSON API that accepts streamed .tft
// uploads and serves the analyzer, lint, check, and static oracles that the
// one-shot CLIs previously each re-ran from scratch.
//
// A request passes four production layers before any replay runs:
//
//	tenant budget → admission queue → singleflight dedup → engine slots
//
// The per-tenant budget bounds how much of the service one tenant can hold
// at once, so a tenant saturating its budget is shed (429) without touching
// anyone else's capacity. The admission queue bounds total admitted work;
// beyond it the server sheds immediately with 429 + Retry-After rather than
// queueing unboundedly — the accept loop never blocks. Identical in-flight
// analyses (same trace content digest, same semantic options) collapse into
// one: followers block on the leader's result and receive byte-identical
// response bodies, with zero duplicate replays. Engine slots bound actual
// replay concurrency. Request timeouts and client disconnects cancel through
// context.Context all the way into the SIMT replay loop, and shutdown drains
// admitted work before returning.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"threadfuser/internal/core"
	"threadfuser/internal/pool"
)

// TenantHeader names the request header carrying the tenant identity.
// Requests without one share the DefaultTenant budget.
const TenantHeader = "X-Tf-Tenant"

// DefaultTenant is the budget bucket for requests that name no tenant.
const DefaultTenant = "anonymous"

// Config configures a Server. The zero value is usable: every field has a
// serving default.
type Config struct {
	// MaxConcurrent bounds simultaneously executing analyses (engine
	// slots). Default: runtime.GOMAXPROCS(0).
	MaxConcurrent int
	// QueueDepth bounds admitted requests — executing plus waiting for an
	// engine slot. Beyond it requests are shed with 429 + Retry-After.
	// Default: 4 × MaxConcurrent.
	QueueDepth int
	// TenantBudget bounds one tenant's admitted requests. Default:
	// MaxConcurrent (one tenant can fill the engine but never the whole
	// queue, so other tenants always have admission room).
	TenantBudget int
	// MaxUploadBytes bounds one .tft upload; larger bodies get 413.
	// Default: 1 GiB.
	MaxUploadBytes int64
	// RequestTimeout bounds one request end to end, including queueing;
	// expiry cancels the replay and returns 504. Default: 2 minutes.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses. Default: 1s.
	RetryAfter time.Duration
	// ReplayParallelism is the worker count inside a single replay. The
	// default, 1, optimizes for request throughput: concurrency comes from
	// MaxConcurrent independent requests, not from fanning one request over
	// every core. Raise it for latency-sensitive, low-traffic deployments.
	ReplayParallelism int
	// DecodeParallelism is the worker count for decoding one upload
	// (indexed v3 traces decode thread-parallel). Default: 1.
	DecodeParallelism int
	// Cache, if set, serves repeat analyses from the content-addressed
	// report store and persists new ones. Combine with Cache.SetMaxBytes to
	// keep a long-running service's disk bounded (LRU).
	Cache *core.Cache
	// SpoolDir receives upload spool files. Default: os.TempDir().
	SpoolDir string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = c.MaxConcurrent
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 1 << 30
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReplayParallelism == 0 {
		c.ReplayParallelism = 1
	}
	if c.DecodeParallelism == 0 {
		c.DecodeParallelism = 1
	}
	if c.SpoolDir == "" {
		c.SpoolDir = os.TempDir()
	}
	return c
}

// Server is the analysis service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	queue  *pool.Sem
	engine *pool.Sem

	mu      sync.Mutex
	tenants map[string]*pool.Sem
	flights map[string]*flight

	// drainMu orders request registration against drain initiation: admit
	// registers in-flight work under the read side, Drain flips draining
	// under the write side, so no registration can slip in after Drain has
	// started waiting (the WaitGroup Add/Wait exclusion rule).
	drainMu  sync.RWMutex
	inflight sync.WaitGroup
	draining atomic.Bool

	stats struct {
		requests, shedQueue, shedTenant   atomic.Uint64
		dedupFollowers, cacheHits         atomic.Uint64
		analyses, timeouts, clientErrors  atomic.Uint64
		serverErrors, completed, rejected atomic.Uint64
	}
}

// New returns a Server ready to mount on an http.Server.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		queue:   nil,
		tenants: make(map[string]*pool.Sem),
		flights: make(map[string]*flight),
	}
	s.queue = pool.NewSem(s.cfg.QueueDepth)
	s.engine = pool.NewSem(s.cfg.MaxConcurrent)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/lint", s.handleLint)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/static", s.handleStatic)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the service's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting new requests (503 + Retry-After) and waits for
// every admitted request and in-flight analysis to finish, or for ctx to
// expire. It is the graceful half of shutdown; pair it with
// http.Server.Shutdown for the connection half.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// tenant returns (creating on first use) the named tenant's budget
// semaphore.
func (s *Server) tenant(name string) *pool.Sem {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = pool.NewSem(s.cfg.TenantBudget)
		s.tenants[name] = t
	}
	return t
}

// TenantInFlight returns the named tenant's currently admitted request
// count — a stats/test observability hook.
func (s *Server) TenantInFlight(name string) int {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.InUse()
}

// QueueInFlight returns the number of currently admitted requests.
func (s *Server) QueueInFlight() int { return s.queue.InUse() }

// tenantOf extracts the request's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return DefaultTenant
}

// admit runs the shedding layers for one request: tenant budget first (an
// over-budget tenant never consumes shared queue room), then the admission
// queue. It returns a release function and false if the request was shed
// (the response has already been written).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	// Register under drainMu's read side: either this lands before Drain
	// flips the flag (and Drain's Wait covers it) or it observes draining
	// and is refused. See drainMu.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.rejected(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	admitted := false
	defer func() {
		if !admitted {
			s.inflight.Done()
		}
	}()
	tenant := tenantOf(r)
	tsem := s.tenant(tenant)
	if !tsem.TryAcquire() {
		s.stats.shedTenant.Add(1)
		s.rejected(w, http.StatusTooManyRequests,
			"tenant %q concurrency budget (%d) exhausted", tenant, tsem.Cap())
		return nil, false
	}
	if !s.queue.TryAcquire() {
		tsem.Release()
		s.stats.shedQueue.Add(1)
		s.rejected(w, http.StatusTooManyRequests,
			"admission queue full (%d requests admitted)", s.queue.Cap())
		return nil, false
	}
	admitted = true
	var once sync.Once
	return func() {
		once.Do(func() {
			s.queue.Release()
			tsem.Release()
			s.inflight.Done()
		})
	}, true
}

// outcome is a flight's terminal state: a status code and a fully marshalled
// body that every requester of the flight writes verbatim — byte-identical
// responses for leader and followers by construction.
type outcome struct {
	status   int
	body     []byte
	cacheHit bool
}

// flight is one in-flight deduplicated computation. refs counts requesters
// currently waiting on it; when the last one walks away the flight's context
// is canceled and the computation aborts.
type flight struct {
	done   chan struct{}
	out    *outcome
	refs   int
	cancel context.CancelFunc
}

// serveFlight coalesces identical work: the first requester for key becomes
// the leader and runs the computation in its own goroutine under a context
// that lives while any requester still waits; later requesters join as
// followers. Whoever is still waiting when the computation finishes writes
// the shared outcome.
func (s *Server) serveFlight(ctx context.Context, w http.ResponseWriter, key string, run func(context.Context) *outcome) {
	for {
		s.mu.Lock()
		f := s.flights[key]
		if f == nil {
			jctx, cancel := context.WithCancel(context.Background())
			f = &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
			s.flights[key] = f
			s.mu.Unlock()
			s.inflight.Add(1)
			go func() {
				defer s.inflight.Done()
				defer cancel()
				out := run(jctx)
				s.mu.Lock()
				delete(s.flights, key)
				f.out = out
				s.mu.Unlock()
				close(f.done)
			}()
			s.awaitFlight(ctx, w, f, "leader")
			return
		}
		f.refs++
		s.mu.Unlock()
		s.stats.dedupFollowers.Add(1)
		if s.awaitFlight(ctx, w, f, "follower") {
			return
		}
		// The flight we joined died of cancellation (its previous waiters
		// all left before we arrived) while our own context is still live:
		// loop and become the new leader.
	}
}

// awaitFlight waits for the flight or the requester's context, writes the
// response, and reports whether the request was actually served (false
// means: retry on a fresh flight).
func (s *Server) awaitFlight(ctx context.Context, w http.ResponseWriter, f *flight, role string) (served bool) {
	select {
	case <-f.done:
		out := f.out
		if out.status == statusCanceled {
			if ctx.Err() == nil {
				// Not our cancellation: the flight was abandoned. Retry.
				return false
			}
			s.stats.timeouts.Add(1)
			s.fail(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
			return true
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Tfserve-Dedup", role)
		if out.cacheHit {
			h.Set("X-Tfserve-Cache", "hit")
		} else {
			h.Set("X-Tfserve-Cache", "miss")
		}
		if out.status >= 500 {
			s.stats.serverErrors.Add(1)
		} else if out.status >= 400 {
			s.stats.clientErrors.Add(1)
		} else {
			s.stats.completed.Add(1)
		}
		w.WriteHeader(out.status)
		w.Write(out.body)
		return true
	case <-ctx.Done():
		s.deref(f)
		s.stats.timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, "request deadline exceeded while %s on in-flight analysis", role)
		return true
	}
}

// deref drops one requester's interest in a flight, canceling the
// computation when the last one leaves.
func (s *Server) deref(f *flight) {
	s.mu.Lock()
	f.refs--
	last := f.refs == 0
	s.mu.Unlock()
	if last {
		f.cancel()
	}
}

// statusCanceled is the internal outcome status for a computation that was
// canceled rather than completed; each waiter translates it against its own
// context (its own deadline → 504, someone else's → retry).
const statusCanceled = -1

// runJob executes one deduplicated computation: acquire an engine slot
// (waiting under the flight's context), run the job, marshal the result
// once. All error mapping to HTTP statuses happens here so every waiter
// sees the same bytes.
func (s *Server) runJob(jctx context.Context, job func(context.Context) (any, bool, error)) *outcome {
	if err := s.engine.Acquire(jctx); err != nil {
		return &outcome{status: statusCanceled}
	}
	defer s.engine.Release()
	s.stats.analyses.Add(1)
	res, cacheHit, err := job(jctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return &outcome{status: statusCanceled}
		}
		// The trace decoded but the engine rejected it (validation,
		// malformed structure the codec tolerates): the request, not the
		// server, is at fault.
		return errOutcome(http.StatusUnprocessableEntity, "%v", err)
	}
	if cacheHit {
		s.stats.cacheHits.Add(1)
	}
	body, err := json.Marshal(res)
	if err != nil {
		return errOutcome(http.StatusInternalServerError, "encoding response: %v", err)
	}
	return &outcome{status: http.StatusOK, body: body, cacheHit: cacheHit}
}

func errOutcome(status int, format string, args ...any) *outcome {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return &outcome{status: status, body: body}
}

// fail writes a JSON error response.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// rejected writes a shedding response: the status, a Retry-After hint, and
// a JSON error body.
func (s *Server) rejected(w http.ResponseWriter, status int, format string, args ...any) {
	s.stats.rejected.Add(1)
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.fail(w, status, format, args...)
}

// Stats is the service's observable state, served at /v1/stats.
type Stats struct {
	Requests       uint64         `json:"requests"`
	Completed      uint64         `json:"completed"`
	ShedQueue      uint64         `json:"shed_queue"`
	ShedTenant     uint64         `json:"shed_tenant"`
	Rejected       uint64         `json:"rejected"`
	DedupFollowers uint64         `json:"dedup_followers"`
	CacheHits      uint64         `json:"cache_hits"`
	Analyses       uint64         `json:"analyses"`
	Timeouts       uint64         `json:"timeouts"`
	ClientErrors   uint64         `json:"client_errors"`
	ServerErrors   uint64         `json:"server_errors"`
	Draining       bool           `json:"draining"`
	QueueInUse     int            `json:"queue_in_use"`
	QueueDepth     int            `json:"queue_depth"`
	EngineInUse    int            `json:"engine_in_use"`
	EngineSlots    int            `json:"engine_slots"`
	Tenants        map[string]int `json:"tenants,omitempty"`
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Requests:       s.stats.requests.Load(),
		Completed:      s.stats.completed.Load(),
		ShedQueue:      s.stats.shedQueue.Load(),
		ShedTenant:     s.stats.shedTenant.Load(),
		Rejected:       s.stats.rejected.Load(),
		DedupFollowers: s.stats.dedupFollowers.Load(),
		CacheHits:      s.stats.cacheHits.Load(),
		Analyses:       s.stats.analyses.Load(),
		Timeouts:       s.stats.timeouts.Load(),
		ClientErrors:   s.stats.clientErrors.Load(),
		ServerErrors:   s.stats.serverErrors.Load(),
		Draining:       s.draining.Load(),
		QueueInUse:     s.queue.InUse(),
		QueueDepth:     s.queue.Cap(),
		EngineInUse:    s.engine.InUse(),
		EngineSlots:    s.engine.Cap(),
	}
	s.mu.Lock()
	if len(s.tenants) > 0 {
		st.Tenants = make(map[string]int, len(s.tenants))
		for name, sem := range s.tenants {
			if n := sem.InUse(); n > 0 {
				st.Tenants[name] = n
			}
		}
	}
	s.mu.Unlock()
	return st
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot())
}
