package opt

import (
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/irgen"
	"threadfuser/internal/vm"
)

// TestFuzzTransformsPreserveSemantics runs randomly generated programs
// (including ones with shared-memory stores) through every optimization
// level and checks the final global/heap memory image and the final data
// registers match the canonical build exactly.
func TestFuzzTransformsPreserveSemantics(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	const threads = 8
	for seed := int64(0); seed < int64(seeds); seed++ {
		params := irgen.DefaultParams(seed)
		params.AllowSharedStores = true
		prog := irgen.Random(params)

		type outcome struct {
			hash uint64
			regs [threads][6]int64
		}
		run := func(p *ir.Program) outcome {
			proc := vm.NewProcess(p)
			shared := proc.AllocGlobal(uint64(8 * params.SharedWords))
			for i := 0; i < params.SharedWords; i++ {
				proc.WriteI64(shared+uint64(8*i), int64(i*37%101)-50)
			}
			privSize := uint64(8 * params.PrivateWords)
			privBase := proc.AllocGlobal(privSize * threads)
			var out outcome
			for tid := 0; tid < threads; tid++ {
				th := proc.NewThread(tid)
				th.SetReg(ir.R(8), int64(privBase+uint64(tid)*privSize))
				th.SetReg(ir.R(9), int64(shared))
				if _, err := th.Run(vm.RunConfig{MaxInstrs: 2_000_000}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for r := 0; r < 6; r++ {
					out.regs[tid][r] = th.Reg(ir.R(r))
				}
			}
			out.hash = proc.Mem.HashBelow(vm.StackBase)
			return out
		}

		want := run(prog)
		for _, lvl := range Levels {
			got := run(Apply(prog, lvl))
			if got.hash != want.hash {
				t.Errorf("seed %d: %s changed global/heap state", seed, lvl)
			}
			if got.regs != want.regs {
				t.Errorf("seed %d: %s changed final register state", seed, lvl)
			}
		}
	}
}

// TestFuzzIfConversionRemovesDivergence spot-checks the transform's
// *intent*: across the random corpus, O3 must convert at least some
// diamonds (the generator produces plenty), and converted programs must
// have strictly fewer conditional branches.
func TestFuzzIfConversionRemovesDivergence(t *testing.T) {
	converted := 0
	for seed := int64(0); seed < 40; seed++ {
		prog := irgen.Random(irgen.DefaultParams(seed))
		clone := ir.Clone(prog)
		n := IfConvertStores(clone, 12)
		converted += n
		if n > 0 && countJcc(clone) >= countJcc(prog) {
			t.Errorf("seed %d: %d conversions but branch count did not drop", seed, n)
		}
	}
	if converted == 0 {
		t.Error("if-conversion never fired on 40 random programs")
	}
}

func countJcc(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Terminator().Op == ir.OpJcc {
				n++
			}
		}
	}
	return n
}
