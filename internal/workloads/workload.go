// Package workloads provides synthetic mini-ISA implementations of the 36
// MIMD CPU workloads the paper studies (Table I), engineered to reproduce
// each application's published control-flow, memory and synchronization
// signature: pigz's data-dependent compression loops, N-body's convergent
// O(n²) force kernel, HDSearch-Midtier's FLANN getpoint divergence,
// microservice request processing with allocator locks and I/O regions, and
// so on. Every workload is buildable at a reduced default scale (so the full
// suite analyzes in seconds) or at the paper's Table-I thread counts.
package workloads

import (
	"fmt"
	"sort"

	"threadfuser/internal/hwsim"
	"threadfuser/internal/ir"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// Suite names group workloads as in Table I.
const (
	SuiteRodinia  = "Rodinia 3.1"
	SuiteParopoly = "Paropoly"
	SuiteMicro    = "Micro Benchmark"
	SuiteUSuite   = "uSuite"
	SuiteDSB      = "DeathStarBench"
	SuiteParsec   = "ParSec 3.0"
	SuiteOther    = "Others"
)

// Config scales a workload instance.
type Config struct {
	// Threads overrides the workload's default thread count (0 keeps it).
	Threads int
	// Seed drives the deterministic input generators.
	Seed int64
	// Scale multiplies inner problem sizes (0 means 1). Used by benches to
	// shrink or grow per-thread work without changing behaviour.
	Scale float64
}

func (c Config) scale(n int) int {
	if c.Scale <= 0 {
		return n
	}
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// ArgFn initializes a thread's registers before it runs.
type ArgFn func(tid int, th *vm.Thread)

// SetupFn seeds a fresh process's memory with the workload's inputs and
// returns the per-thread argument initializer.
type SetupFn func(p *vm.Process) (ArgFn, error)

// Workload describes one Table-I entry.
type Workload struct {
	Name  string
	Suite string
	Desc  string
	// DefaultThreads is the reduced-scale thread count used by tests and
	// benches; PaperThreads is the Table-I SIMT thread count.
	DefaultThreads int
	PaperThreads   int
	// HasGPUImpl marks the 11 correlation workloads with CUDA twins.
	HasGPUImpl bool
	// Microservice marks the data-center set used by figures 8-10.
	Microservice bool

	// Build constructs the program and setup for a configuration.
	Build func(cfg Config) (*ir.Program, SetupFn, error)
}

// Instance is a built workload ready to trace or execute.
type Instance struct {
	Workload *Workload
	Config   Config
	Prog     *ir.Program
	setup    SetupFn
	threads  int
}

// Threads returns the instance's thread count.
func (i *Instance) Threads() int { return i.threads }

// NewProcess allocates and seeds a fresh process for the instance.
func (i *Instance) NewProcess() (*vm.Process, ArgFn, error) {
	p := vm.NewProcess(i.Prog)
	args, err := i.setup(p)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: %s setup: %w", i.Workload.Name, err)
	}
	return p, args, nil
}

// Trace runs the tracer over all threads of a fresh process.
func (i *Instance) Trace() (*trace.Trace, error) {
	p, args, err := i.NewProcess()
	if err != nil {
		return nil, err
	}
	return vm.TraceAll(p, i.threads, vm.RunConfig{}, args)
}

// RunHardware executes the instance on the lockstep hardware oracle.
func (i *Instance) RunHardware(warpSize int, listener simt.Listener) (*simt.Result, error) {
	p, args, err := i.NewProcess()
	if err != nil {
		return nil, err
	}
	return hwsim.Run(p, i.threads, hwsim.Options{WarpSize: warpSize, Listener: listener}, args)
}

// WithProgram returns a new instance that runs a transformed build of the
// same workload (e.g. an internal/opt optimization-level variant) with the
// identical setup and inputs. The transformed program must keep the same
// function ids and argument conventions, which opt's transforms do.
func (i *Instance) WithProgram(prog *ir.Program) *Instance {
	ni := *i
	ni.Prog = prog
	return &ni
}

// Instantiate builds the workload at the given configuration.
func (w *Workload) Instantiate(cfg Config) (*Instance, error) {
	threads := cfg.Threads
	if threads == 0 {
		threads = w.DefaultThreads
	}
	cfg.Threads = threads
	prog, setup, err := w.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("workloads: building %s: %w", w.Name, err)
	}
	return &Instance{Workload: w, Config: cfg, Prog: prog, setup: setup, threads: threads}, nil
}

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate workload %q", w.Name))
	}
	registry[w.Name] = w
	return w
}

// ByName returns the named workload, or an error listing valid names.
func ByName(name string) (*Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %d registered; see workloads.All)", name, len(registry))
}

// All returns every registered workload ordered by suite then name, the
// order Table I lists them in.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return suiteRank(out[i].Suite) < suiteRank(out[j].Suite)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TableI returns the 36 workloads of the paper's Table I (excluding study
// variants such as hdsearch-mid-fixed).
func TableI() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.PaperThreads > 0 {
			out = append(out, w)
		}
	}
	return out
}

// Correlation returns the 11 workloads with GPU twins used in section IV.
func Correlation() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.HasGPUImpl {
			out = append(out, w)
		}
	}
	return out
}

// Microservices returns the data-center set used by figures 8-10.
func Microservices() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Microservice && w.PaperThreads > 0 {
			out = append(out, w)
		}
	}
	return out
}

func suiteRank(s string) int {
	switch s {
	case SuiteRodinia:
		return 0
	case SuiteParopoly:
		return 1
	case SuiteMicro:
		return 2
	case SuiteUSuite:
		return 3
	case SuiteDSB:
		return 4
	case SuiteParsec:
		return 5
	case SuiteOther:
		return 6
	}
	return 7
}
