package simt

import (
	"threadfuser/internal/coalesce"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// ChargeInstrs adds one lockstep execution of an n-instruction block with
// the given number of active lanes to the warp and function metrics
// (equation 1 numerator and denominator).
func ChargeInstrs(wm *WarpMetrics, fm *FuncMetrics, n uint64, active int) {
	wm.Lockstep += n
	wm.ThreadInstrs += n * uint64(active)
	if active >= 0 && active <= MaxWarpSize {
		wm.LaneHistogram[active] += n
	}
	if fm != nil {
		fm.Lockstep += n
		fm.ThreadInstrs += n * uint64(active)
	}
}

// MemCharger coalesces lockstep block executions' memory accesses while
// reusing its instruction-index and per-segment access buffers across
// blocks, keeping the replay inner loop allocation-free. The zero value is
// ready to use; a MemCharger must not be shared between goroutines — each
// replay worker owns one.
// fusedMaxSites bounds the per-element instruction-slot array of the fused
// charge path. Real blocks touch a handful of memory instructions; an
// element with more falls back to the gather path.
const fusedMaxSites = 6

// siteAcc is one instruction slot of the fused charge path: four streaming
// sector walks, one per (load/store × stack/heap) sub-stream, fed in lane
// order — the same partition Charge's gather-then-Split computes.
type siteAcc struct {
	instr                                      uint16
	loadStack, loadHeap, storeStack, storeHeap coalesce.Walk
}

type MemCharger struct {
	idx           []uint16
	loads, stores []coalesce.Access
	scratch       coalesce.Scratch
	sites         [fusedMaxSites]siteAcc

	// Site, when non-nil, observes each per-instruction coalescing outcome:
	// the instruction index within the block just charged and its combined
	// load+store transaction counts per segment. The replay engine hooks the
	// per-site histograms through it; when nil (the lockstep hardware oracle,
	// throwaway chargers) the accounting path is unchanged.
	Site func(instr uint16, stackTx, heapTx int)
}

// Charge coalesces one lockstep block execution's memory accesses. recs
// holds the active lanes' records for the same static block; accesses are
// merged per instruction index, loads and stores coalesce separately into
// 32-byte transactions, and counts are split by stack/heap segment. Both the
// trace-replay engine and the lockstep hardware oracle charge memory through
// this path, so their transaction metrics are directly comparable. fm, when
// non-nil, receives the per-function attribution.
func (mc *MemCharger) Charge(wm *WarpMetrics, fm *FuncMetrics, recs []*trace.Record) {
	idxList := mc.idx[:0]
	for _, r := range recs {
		for _, m := range r.Mem {
			found := false
			for _, x := range idxList {
				if x == m.Instr {
					found = true
					break
				}
			}
			if !found {
				idxList = append(idxList, m.Instr)
			}
		}
	}
	mc.idx = idxList
	if len(idxList) == 0 {
		return
	}
	// Insertion sort: index lists are tiny (a handful of memory instructions
	// per block) and this avoids sort.Slice's closure allocation on the
	// hottest accounting path.
	for i := 1; i < len(idxList); i++ {
		for j := i; j > 0 && idxList[j] < idxList[j-1]; j-- {
			idxList[j], idxList[j-1] = idxList[j-1], idxList[j]
		}
	}

	for _, idx := range idxList {
		loads, stores := mc.loads[:0], mc.stores[:0]
		for _, r := range recs {
			for _, m := range r.Mem {
				if m.Instr != idx {
					continue
				}
				a := coalesce.Access{Addr: m.Addr, Size: m.Size}
				if m.Store {
					stores = append(stores, a)
				} else {
					loads = append(loads, a)
				}
			}
		}
		mc.loads, mc.stores = loads, stores
		ls, lh := mc.scratch.Split(loads)
		ss, sh := mc.scratch.Split(stores)
		wm.MemInstrs++
		if ls+ss > 0 {
			wm.StackMemInstrs++
			wm.StackTx += uint64(ls + ss)
		}
		if lh+sh > 0 {
			wm.HeapMemInstrs++
			wm.HeapTx += uint64(lh + sh)
		}
		if fm != nil {
			fm.MemInstrs++
			fm.HeapTx += uint64(lh + sh)
			fm.StackTx += uint64(ls + ss)
		}
		if mc.Site != nil {
			mc.Site(idx, ls+ss, lh+sh)
		}
	}
}

// fusedView bundles what the fused charge path needs to reach any active
// lane's accesses for a window element without touching records: the
// lane-indexed SoA columns of the warp's threads (offset prefix sums, flat
// address and packed-meta columns — see trace.Cols) plus the window's active
// lane list and each lane's cursor index at window start. Lane li's accesses
// for window element k are the m-long runs of addr/meta starting at
// off[lanes[li]][idxs[li]+k].
type fusedView struct {
	lanes []int
	idxs  []int32
	off   [][]uint32
	addr  [][]uint64
	meta  [][]uint32
}

// chargeFused coalesces one fused window element's memory accesses without
// touching records at all: each lane's accesses come straight from its flat
// columns at the offset its prefix-sum column gives for the element, every
// lane's list being exactly m long (the fused verifier already proved the
// lanes' control words — including the access-list length — identical). The
// outcome is bit-identical to Charge — the same min(distinct sectors, cap)
// counts over the same lane-ordered sub-streams — but only for shapes the
// closed forms and streaming walks can handle. chargeFused returns false
// (having charged nothing) when a sub-stream is not walkable (addresses
// decrease, a zero size) or the element touches more than fusedMaxSites
// distinct instructions; the caller must then gather the records and charge
// via Charge.
func (mc *MemCharger) chargeFused(wm *WarpMetrics, fm *FuncMetrics, v *fusedView, k, m, nl int) bool {
	if mc.chargeUniform(wm, fm, v, k, m, nl) {
		return true
	}
	return mc.chargeGeneral(wm, fm, v, k, m, nl)
}

// colAcc is one instruction column of the fused uniform charge path: the
// shared packed (instruction, size, store) meta word plus the arithmetic
// address progression being verified across lanes.
type colAcc struct {
	meta   uint32
	a0     uint64 // lane 0's address
	prev   uint64 // last verified lane's address
	stride uint64 // constant lane-to-lane delta (set at lane 1)
}

// chargeUniform is chargeFused's hot path for the dominant SIMT access
// shape: every lane issued the same access list (same strictly increasing
// instruction sequence, same load/store kinds and sizes) and each list
// position's addresses form a non-decreasing arithmetic progression across
// lanes — base+TID*stride table walks and the per-thread stack mirror, which
// is what warp-uniform regions produce. Each position then IS one
// instruction's warp-wide sub-stream in ascending address order, and its
// transaction count follows in closed form from (base, stride, size, lanes)
// — no per-access sector walk at all. Metric writes happen only once every
// lane has verified; any bail returns false with nothing charged, and the
// caller re-coalesces through the general path.
func (mc *MemCharger) chargeUniform(wm *WarpMetrics, fm *FuncMetrics, v *fusedView, k, m, nl int) bool {
	if m > fusedMaxSites {
		return false
	}
	l0 := v.lanes[0]
	o0 := int(v.off[l0][int(v.idxs[0])+k])
	meta0 := v.meta[l0][o0 : o0+m]
	addr0 := v.addr[l0][o0 : o0+m]
	var cols [fusedMaxSites]colAcc
	if m == 1 {
		// Single memory instruction — the dominant block shape. Keep the
		// whole column in registers: no slot array traffic, one offset load
		// and two column loads per lane.
		mw := meta0[0]
		if trace.MetaSize(mw) == 0 {
			return false
		}
		a0 := addr0[0]
		prev := a0
		var stride uint64
		for li := 1; li < nl; li++ {
			l := v.lanes[li]
			o := v.off[l][int(v.idxs[li])+k]
			if v.meta[l][o] != mw {
				return false
			}
			a := v.addr[l][o]
			if li == 1 {
				if a < prev {
					return false
				}
				stride = a - prev
			} else if a != prev+stride {
				return false
			}
			prev = a
		}
		cols[0] = colAcc{meta: mw, a0: a0, prev: prev, stride: stride}
	} else {
		prev := -1
		for j := 0; j < m; j++ {
			mw := meta0[j]
			// Strictly increasing instruction indices mean each instruction
			// owns exactly one column (no split sub-streams) and the commit
			// order below matches Charge's sorted order for free.
			if int(trace.MetaInstr(mw)) <= prev || trace.MetaSize(mw) == 0 {
				return false
			}
			prev = int(trace.MetaInstr(mw))
			cols[j] = colAcc{meta: mw, a0: addr0[j], prev: addr0[j]}
		}
		// Lane 1 sets each column's stride; later lanes only verify it, so
		// the per-lane loop below carries no lane-index branch.
		if nl > 1 {
			l := v.lanes[1]
			o := int(v.off[l][int(v.idxs[1])+k])
			meta := v.meta[l][o : o+m]
			addr := v.addr[l][o : o+m]
			for j := 0; j < m; j++ {
				c := &cols[j]
				if meta[j] != c.meta || addr[j] < c.prev {
					return false
				}
				c.stride = addr[j] - c.prev
				c.prev = addr[j]
			}
		}
		for li := 2; li < nl; li++ {
			l := v.lanes[li]
			o := int(v.off[l][int(v.idxs[li])+k])
			meta := v.meta[l][o : o+m]
			addr := v.addr[l][o : o+m]
			for j := 0; j < m; j++ {
				c := &cols[j]
				if meta[j] != c.meta || addr[j] != c.prev+c.stride {
					return false
				}
				c.prev = addr[j]
			}
		}
	}
	for j := 0; j < m; j++ {
		c := &cols[j]
		z := uint64(trace.MetaSize(c.meta))
		aN := c.prev
		if aN+z-1 < aN || vm.SegmentOf(c.a0) != vm.SegmentOf(aN) {
			// Wrapping span arithmetic, or a progression crossing a segment
			// boundary (each access charges to its own segment there).
			return false
		}
		first0 := c.a0 / coalesce.TransactionSize
		last0 := (c.a0 + z - 1) / coalesce.TransactionSize
		var count int
		switch s := c.stride; {
		case s <= z:
			// Byte-contiguous or overlapping accesses union into one
			// interval: the whole span's sectors.
			count = int((aN+z-1)/coalesce.TransactionSize - first0 + 1)
		case s%coalesce.TransactionSize == 0:
			// Identical alignment every lane: spans are congruent, and they
			// either chain sector-contiguously (telescoping to the whole
			// span) or stay pairwise disjoint.
			if s/coalesce.TransactionSize <= last0-first0 {
				count = int((aN+z-1)/coalesce.TransactionSize - first0 + 1)
			} else {
				count = nl * int(last0-first0+1)
			}
		default:
			// Mixed alignment: replay the sorted sector walk purely
			// arithmetically — no loads, the addresses are a_0 + i*s.
			count = int(last0 - first0 + 1)
			prevLast := last0
			a := c.a0
			for i := 1; i < nl; i++ {
				a += s
				f, l := a/coalesce.TransactionSize, (a+z-1)/coalesce.TransactionSize
				if f <= prevLast {
					f = prevLast + 1
				}
				if l >= f {
					count += int(l - f + 1)
					prevLast = l
				}
			}
		}
		if count > coalesce.SectorCap {
			count = coalesce.SectorCap
		}
		var st, ht int
		if vm.SegmentOf(c.a0) == vm.SegStack {
			st = count
		} else {
			ht = count
		}
		wm.MemInstrs++
		if st > 0 {
			wm.StackMemInstrs++
			wm.StackTx += uint64(st)
		}
		if ht > 0 {
			wm.HeapMemInstrs++
			wm.HeapTx += uint64(ht)
		}
		if fm != nil {
			fm.MemInstrs++
			fm.HeapTx += uint64(ht)
			fm.StackTx += uint64(st)
		}
		if mc.Site != nil {
			mc.Site(trace.MetaInstr(c.meta), st, ht)
		}
	}
	return true
}

// chargeGeneral is chargeFused's fallback for access lists that are not one
// clean arithmetic progression per instruction (repeated or reordered
// instruction indices, mixed sizes, scattered addresses): a
// per-(instruction, load/store, segment) slot table of streaming walks, fed
// in the same lane-major order Charge's gather produces.
func (mc *MemCharger) chargeGeneral(wm *WarpMetrics, fm *FuncMetrics, v *fusedView, k, m, nl int) bool {
	ns := 0
	sites := &mc.sites
	for li := 0; li < nl; li++ {
		l := v.lanes[li]
		o := int(v.off[l][int(v.idxs[li])+k])
		meta := v.meta[l][o : o+m]
		addr := v.addr[l][o : o+m]
		for i := 0; i < m; i++ {
			instr := trace.MetaInstr(meta[i])
			var s *siteAcc
			for i := 0; i < ns; i++ {
				if sites[i].instr == instr {
					s = &sites[i]
					break
				}
			}
			if s == nil {
				if ns == len(sites) {
					return false
				}
				s = &sites[ns]
				*s = siteAcc{instr: instr}
				ns++
			}
			var w *coalesce.Walk
			if stack := vm.SegmentOf(addr[i]) == vm.SegStack; trace.MetaStore(meta[i]) {
				if stack {
					w = &s.storeStack
				} else {
					w = &s.storeHeap
				}
			} else if stack {
				w = &s.loadStack
			} else {
				w = &s.loadHeap
			}
			if !w.Add(coalesce.Access{Addr: addr[i], Size: trace.MetaSize(meta[i])}) {
				return false
			}
		}
	}
	if ns == 0 {
		return true
	}
	// Charge slots in ascending instruction order, matching Charge's sorted
	// index list (only the Site callback order is observable, but keeping the
	// orders identical costs a couple of swaps on a tiny array).
	for i := 1; i < ns; i++ {
		for j := i; j > 0 && sites[j].instr < sites[j-1].instr; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	for i := 0; i < ns; i++ {
		s := &sites[i]
		st := s.loadStack.Tx() + s.storeStack.Tx()
		ht := s.loadHeap.Tx() + s.storeHeap.Tx()
		wm.MemInstrs++
		if st > 0 {
			wm.StackMemInstrs++
			wm.StackTx += uint64(st)
		}
		if ht > 0 {
			wm.HeapMemInstrs++
			wm.HeapTx += uint64(ht)
		}
		if fm != nil {
			fm.MemInstrs++
			fm.HeapTx += uint64(ht)
			fm.StackTx += uint64(st)
		}
		if mc.Site != nil {
			mc.Site(s.instr, st, ht)
		}
	}
	return true
}

// ChargeMemory coalesces one lockstep block execution's memory accesses with
// a throwaway MemCharger. Hot paths should hold a MemCharger and call Charge
// instead.
func ChargeMemory(wm *WarpMetrics, fm *FuncMetrics, recs []*trace.Record) {
	var mc MemCharger
	mc.Charge(wm, fm, recs)
}
