package trace

import (
	"fmt"
	"io"
)

// Dump writes a human-readable rendering of one thread's event stream —
// the PIN-log view of the trace. maxRecords bounds the output (0 = all).
func Dump(w io.Writer, t *Trace, tid int, maxRecords int) error {
	if tid < 0 || tid >= len(t.Threads) {
		return fmt.Errorf("trace: dump: thread %d out of range [0,%d)", tid, len(t.Threads))
	}
	th := t.Threads[tid]
	if _, err := fmt.Fprintf(w, "thread %d of %s: %d records, %d instructions\n",
		tid, t.Program, len(th.Records), th.Instructions()); err != nil {
		return err
	}
	depth := 0
	for i := range th.Records {
		if maxRecords > 0 && i >= maxRecords {
			fmt.Fprintf(w, "... %d more records\n", len(th.Records)-i)
			break
		}
		r := &th.Records[i]
		indent := fmt.Sprintf("%*s", 2*depth, "")
		switch r.Kind {
		case KindCall:
			fmt.Fprintf(w, "%scall %s\n", indent, t.FuncName(r.Callee))
			depth++
		case KindRet:
			depth--
			if depth < 0 {
				depth = 0
			}
			fmt.Fprintf(w, "%sret\n", fmt.Sprintf("%*s", 2*depth, ""))
		case KindBBL:
			fmt.Fprintf(w, "%s%s.b%d x%d", indent, t.FuncName(r.Func), r.Block, r.N)
			for _, m := range r.Mem {
				op := "ld"
				if m.Store {
					op = "st"
				}
				fmt.Fprintf(w, " [%d:%s%d@%#x]", m.Instr, op, m.Size, m.Addr)
			}
			for _, l := range r.Locks {
				op := "lock"
				if l.Release {
					op = "unlock"
				}
				fmt.Fprintf(w, " [%d:%s@%#x]", l.Instr, op, l.Addr)
			}
			fmt.Fprintln(w)
		case KindSkip:
			fmt.Fprintf(w, "%sskip %d (%s)\n", indent, r.N, r.SkipKind)
		}
	}
	return nil
}
