// Warp-width study: the architects' use case of section V-B. The paper
// argues SIMT designs between a multicore CPU and a GPU (hundreds to low
// thousands of threads) deserve exploration, and uses ThreadFuser to sweep
// warp width, batching policy, and machine configuration over workloads no
// GPU suite contains.
//
// This example sweeps warp widths 4..64 over a mixed set of workloads,
// compares batching policies, and runs the same kernel on two simulated
// machines (a GPU-class device and a small CPU-adjacent SIMT design).
//
// Run with:
//
//	go run ./examples/warpwidthstudy
package main

import (
	"fmt"
	"log"

	"threadfuser"
	"threadfuser/internal/core"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

var studied = []string{
	"paropoly.nbody",        // embarrassingly SIMT
	"usuite.textsearch.mid", // a promising microservice
	"rodinia.bfs",           // graph irregularity
	"other.pigz",            // the hard case
}

func main() {
	// Parts 1 and 2 sweep configurations over an unchanged trace, so each
	// workload is traced once and analyzed through a core.Session: the
	// session caches the DCFG and post-dominator products (and each warp
	// formation) across all the sweep points.

	// Part 1: warp width vs efficiency (figure 1's architect reading:
	// low-efficiency workloads are the warp-width-sensitive ones).
	widths := []int{4, 8, 16, 32, 64}
	fmt.Printf("%-24s", "SIMT efficiency")
	for _, ws := range widths {
		fmt.Printf("  w=%-4d", ws)
	}
	fmt.Println()
	for _, name := range studied {
		w, err := threadfuser.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := threadfuser.Trace(w, threadfuser.Options{Seed: 1, Threads: 128})
		if err != nil {
			log.Fatal(err)
		}
		sess := core.NewSession()
		fmt.Printf("%-24s", name)
		for _, ws := range widths {
			opts := core.Defaults()
			opts.WarpSize = ws
			rep, err := sess.Analyze(tr, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1f%%", rep.Efficiency*100)
		}
		fmt.Println()
	}

	// Part 2: batching policy (the analyzer's configurable warp formation).
	fmt.Printf("\n%-24s %12s %12s %12s\n", "batching (w=32)", "round-robin", "strided", "greedy")
	for _, name := range studied {
		w, err := threadfuser.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := threadfuser.Trace(w, threadfuser.Options{Seed: 1, Threads: 128})
		if err != nil {
			log.Fatal(err)
		}
		sess := core.NewSession()
		effs := make([]float64, 0, 3)
		for _, f := range []warp.Formation{warp.RoundRobin, warp.Strided, warp.GreedyEntry} {
			opts := core.Defaults()
			opts.Formation = f
			rep, err := sess.Analyze(tr, opts)
			if err != nil {
				log.Fatal(err)
			}
			effs = append(effs, rep.Efficiency)
		}
		fmt.Printf("%-24s %11.1f%% %11.1f%% %11.1f%%\n",
			name, effs[0]*100, effs[1]*100, effs[2]*100)
	}

	// Part 3: the same warp traces on two machines — a GPU-class device
	// and a small SIMT design closer to a multicore CPU.
	fmt.Printf("\n%-24s %14s %14s\n", "cycles (w=32)", "rtx3070-like", "small-SIMT")
	for _, name := range studied {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 256})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := inst.Trace()
		if err != nil {
			log.Fatal(err)
		}
		kt, err := simtrace.Generate(inst.Prog, tr, 32)
		if err != nil {
			log.Fatal(err)
		}
		big, err := gpusim.Run(kt, gpusim.RTX3070())
		if err != nil {
			log.Fatal(err)
		}
		small, err := gpusim.Run(kt, gpusim.SmallSIMT())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %14d %14d\n", name, big.Cycles, small.Cycles)
	}
	fmt.Println("\nDivergent workloads close the gap between the two machines: when warps")
	fmt.Println("run half-empty, a smaller SIMT design loses little — the design space the")
	fmt.Println("paper's section V-B opens.")
}
