package check

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

func workloadTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWorkloadsSatisfyCatalog(t *testing.T) {
	for _, name := range []string{"vectoradd", "seededrace", "rodinia.bfs"} {
		rep, err := Run(name, workloadTrace(t, name), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.OK() {
			for _, v := range rep.Violations {
				t.Errorf("%s: %s", name, v)
			}
		}
		if rep.Checks == 0 {
			t.Errorf("%s: no assertions evaluated", name)
		}
		if len(rep.Props) != len(Properties()) {
			t.Errorf("%s: ran %d properties, catalog has %d", name, len(rep.Props), len(Properties()))
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	tr := workloadTrace(t, "vectoradd")
	cases := []Options{
		{WarpSizes: []int{0}},
		{WarpSizes: []int{65}},
		{Parallelism: []int{-1}},
		{Props: []string{"no-such-prop"}},
	}
	for i, opts := range cases {
		if _, err := Run("x", tr, opts); err == nil {
			t.Errorf("case %d: Run accepted invalid options %+v", i, opts)
		}
	}
}

func TestPropSelection(t *testing.T) {
	tr := workloadTrace(t, "vectoradd")
	rep, err := Run("x", tr, Options{Props: []string{"codec", "width1"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"codec", "width1"}; !reflect.DeepEqual(rep.Props, want) {
		t.Errorf("Props = %v, want %v", rep.Props, want)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated trace invalid: %v", seed, err)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Error("distinct seeds produced identical traces")
	}
}

func TestGeneratedTracesSatisfyCatalog(t *testing.T) {
	reports, failures, err := RunGenerated(Options{}, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 25 {
		t.Fatalf("got %d reports, want 25", len(reports))
	}
	for _, f := range failures {
		t.Errorf("seed %d: %d violations (first: %s)", f.Seed, len(f.Report.Violations), f.Report.Violations[0])
	}
}

// brokenAnalyze injects the mutation the acceptance criterion demands: the
// replay at warp width 4 with parallel workers over-counts one thread
// instruction, exactly the kind of bug a racy reduction would cause.
func brokenAnalyze(tr *trace.Trace, opts core.Options) (*core.Report, error) {
	r, err := core.Analyze(tr, opts)
	if err != nil || r == nil {
		return r, err
	}
	if opts.WarpSize == 4 && opts.Parallelism > 1 {
		rr := *r
		rr.TotalInstrs++
		return &rr, nil
	}
	return r, nil
}

func TestFaultInjectionIsCaught(t *testing.T) {
	tr := workloadTrace(t, "vectoradd")
	rep, err := Run("vectoradd", tr, Options{Analyze: brokenAnalyze})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("catalog did not catch a +1 TotalInstrs mutation in the parallel replay")
	}
	var det bool
	for _, v := range rep.Violations {
		if v.Prop == "determinism" && strings.Contains(v.Config, "warp=4") {
			det = true
		}
	}
	if !det {
		t.Errorf("no determinism violation at warp=4; got %v", rep.Violations)
	}
	// The healthy analyzer stays green on the same trace.
	ok, err := Run("vectoradd", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok.OK() {
		t.Errorf("control run failed: %v", ok.Violations)
	}
}

// TestBrokenReplayShrinksToReproducer is the end-to-end acceptance check:
// a deliberately broken replay must be caught on generated traces and the
// failure delivered as a shrunken reproducer that still fails.
func TestBrokenReplayShrinksToReproducer(t *testing.T) {
	opts := Options{Analyze: brokenAnalyze, Props: []string{"determinism"}}
	reports, failures, err := RunGenerated(opts, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != len(reports) {
		t.Fatalf("broken replay: %d/%d generated traces caught, want all", len(failures), len(reports))
	}
	for _, f := range failures {
		orig := Generate(f.Seed)
		origRecs := 0
		for _, th := range orig.Threads {
			origRecs += len(th.Records)
		}
		if f.ReproThreads > len(orig.Threads) || f.ReproRecords > origRecs {
			t.Errorf("seed %d: reproducer grew (%d threads/%d records from %d/%d)",
				f.Seed, f.ReproThreads, f.ReproRecords, len(orig.Threads), origRecs)
		}
		if f.ReproThreads != 1 {
			t.Errorf("seed %d: reproducer has %d threads, want shrink to 1", f.Seed, f.ReproThreads)
		}
		if err := f.Repro.Validate(); err != nil {
			t.Errorf("seed %d: reproducer invalid: %v", f.Seed, err)
		}
		rep, err := Run("repro", f.Repro, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Errorf("seed %d: shrunken reproducer no longer fails", f.Seed)
		}
	}
}

func TestShrinkReducesRecordCount(t *testing.T) {
	tr := Generate(11)
	total := func(t *trace.Trace) int {
		n := 0
		for _, th := range t.Threads {
			n += len(th.Records)
		}
		return n
	}
	// "Bug" triggered by any trace that still has a memory access.
	fails := func(c *trace.Trace) bool {
		for _, th := range c.Threads {
			for _, r := range th.Records {
				if len(r.Mem) > 0 {
					return true
				}
			}
		}
		return false
	}
	if !fails(tr) {
		t.Skip("seed 11 generated no memory accesses")
	}
	small := Shrink(tr, fails, 0)
	if !fails(small) {
		t.Fatal("shrunken trace no longer fails the predicate")
	}
	if err := small.Validate(); err != nil {
		t.Fatalf("shrunken trace invalid: %v", err)
	}
	if total(small) > total(tr) {
		t.Errorf("shrink grew the trace: %d -> %d records", total(tr), total(small))
	}
	if len(small.Threads) != 1 {
		t.Errorf("shrink kept %d threads, want 1", len(small.Threads))
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		Input: "x", Props: []string{"codec"}, Checks: 3,
		Violations: []Violation{{Prop: "codec", Input: "x", Config: "warp=4 par=1 round-robin", Msg: "boom"}},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"FAIL", "codec", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestSortViolations(t *testing.T) {
	vs := []Violation{
		{Prop: "codec", Config: "b", Msg: "z"},
		{Prop: "determinism", Config: "a", Msg: "y"},
		{Prop: "codec", Config: "a", Msg: "x"},
	}
	sortViolations(vs)
	want := []Violation{
		{Prop: "determinism", Config: "a", Msg: "y"},
		{Prop: "codec", Config: "a", Msg: "x"},
		{Prop: "codec", Config: "b", Msg: "z"},
	}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("sortViolations = %v, want %v", vs, want)
	}
}

// TestStaticUniformInvariantOnAllWorkloads enforces the static oracle's
// soundness contract across the entire built-in catalog: a branch classified
// warp-uniform by internal/staticsimt must never record a divergence at any
// matrix cell.
func TestStaticUniformInvariantOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(w.Name, tr, Options{Props: []string{"staticuniform"}, Prog: inst.Prog})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Error(v)
			}
			if rep.Checks == 0 {
				t.Error("staticuniform evaluated no assertions")
			}
		})
	}
}

func TestStaticUniformRejectsMismatchedProgram(t *testing.T) {
	tr := workloadTrace(t, "vectoradd")
	other, err := workloads.ByName("seededrace")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := other.Instantiate(workloads.Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run("x", tr, Options{Props: []string{"staticuniform"}, Prog: inst.Prog})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("mismatched program accepted by staticuniform")
	}
}
