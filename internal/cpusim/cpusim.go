// Package cpusim models the multicore CPU baseline the paper normalizes its
// figure-6 speedups against ("Speedup Normalized to Multi-threaded CPU
// execution on actual CPU"). It consumes the same MIMD traces the analyzer
// does: each thread's instruction stream executes on a superscalar core
// model (a base IPC per class) with a per-core L1, shared L2 and a
// bandwidth/latency DRAM model shared with nothing else.
//
// Like gpusim, the model is not calibrated to real silicon; it provides a
// consistent denominator so speedup *shapes* are meaningful. Skipped (I/O)
// instructions are excluded on both sides of the comparison, matching the
// paper's tracing methodology.
package cpusim

import (
	"fmt"

	"threadfuser/internal/trace"
)

// Config sizes the multicore baseline.
type Config struct {
	Name string
	// Cores is the number of CPU cores; threads are assigned round-robin
	// and each core runs its threads back to back.
	Cores int
	// IPC is the sustained scalar instructions-per-cycle of one core on
	// cache-resident code (superscalar width after stalls).
	IPC float64
	// L1 is per-core; L2 is shared.
	L1 CacheConfig
	L2 CacheConfig
	// DRAMLatency is charged per L2 miss; DRAMBytesPerClk bounds total
	// traffic.
	DRAMLatency     uint64
	DRAMBytesPerClk float64
}

// CacheConfig mirrors gpusim's cache sizing (32-byte lines).
type CacheConfig struct {
	Sets    int
	Ways    int
	Latency uint64
}

// Xeon20 approximates the paper's trace-collection host (an Intel Xeon
// E5-2630 with 20 cores).
func Xeon20() Config {
	return Config{
		Name:            "xeon-20c",
		Cores:           20,
		IPC:             2.0,
		L1:              CacheConfig{Sets: 64, Ways: 8, Latency: 4},
		L2:              CacheConfig{Sets: 4096, Ways: 16, Latency: 40},
		DRAMLatency:     180,
		DRAMBytesPerClk: 8,
	}
}

// Result summarizes a CPU simulation.
type Result struct {
	Config    string
	Cycles    uint64 // max over cores (the parallel makespan)
	Instrs    uint64
	L1HitRate float64
	L2HitRate float64
	DRAMBytes uint64
}

const lineSize = 32

type cache struct {
	sets, ways int
	latency    uint64
	tags       []uint64
	valid      []bool
	used       []uint64
	tick       uint64
	hits, miss uint64
}

func newCache(c CacheConfig) *cache {
	n := c.Sets * c.Ways
	return &cache{sets: c.Sets, ways: c.Ways, latency: c.Latency,
		tags: make([]uint64, n), valid: make([]bool, n), used: make([]uint64, n)}
}

func (c *cache) access(addr uint64) bool {
	c.tick++
	line := addr / lineSize
	set := int(line % uint64(c.sets))
	base := set * c.ways
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.used[i] = c.tick
			c.hits++
			return true
		}
		if c.used[i] < oldest {
			victim, oldest = i, c.used[i]
		}
	}
	c.miss++
	c.tags[victim] = line
	c.valid[victim] = true
	c.used[victim] = c.tick
	return false
}

func (c *cache) hitRate() float64 {
	if c.hits+c.miss == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.miss)
}

// Run simulates the trace on the configured multicore and returns the
// parallel makespan.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.Cores <= 0 || cfg.IPC <= 0 {
		return nil, fmt.Errorf("cpusim: invalid config %+v", cfg)
	}
	l1s := make([]*cache, cfg.Cores)
	for i := range l1s {
		l1s[i] = newCache(cfg.L1)
	}
	l2 := newCache(cfg.L2)
	res := &Result{Config: cfg.Name}

	coreCycles := make([]float64, cfg.Cores)
	var dramBytes uint64
	for ti, th := range tr.Threads {
		core := ti % cfg.Cores
		l1 := l1s[core]
		cycles := 0.0
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			res.Instrs += r.N
			cycles += float64(r.N) / cfg.IPC
			for _, m := range r.Mem {
				switch {
				case l1.access(m.Addr):
					// Hits overlap with execution on an OoO core.
				case l2.access(m.Addr):
					cycles += float64(cfg.L2.Latency) / 2 // partial overlap
				default:
					cycles += float64(cfg.DRAMLatency) / 2
					dramBytes += lineSize
				}
			}
		}
		coreCycles[core] += cycles
	}

	// Bandwidth bound: total DRAM traffic cannot move faster than the
	// memory system allows, regardless of core count.
	var makespan float64
	for _, c := range coreCycles {
		if c > makespan {
			makespan = c
		}
	}
	if cfg.DRAMBytesPerClk > 0 {
		if bw := float64(dramBytes) / cfg.DRAMBytesPerClk; bw > makespan {
			makespan = bw
		}
	}
	res.Cycles = uint64(makespan)
	res.L1HitRate = aggregate(l1s)
	res.L2HitRate = l2.hitRate()
	res.DRAMBytes = dramBytes
	return res, nil
}

func aggregate(cs []*cache) float64 {
	var h, m uint64
	for _, c := range cs {
		h += c.hits
		m += c.miss
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
