package cfg

import (
	"threadfuser/internal/ir"
)

// FromFunction builds a function's static CFG in DCFG form (including the
// virtual exit block). The lockstep hardware oracle (internal/hwsim) uses
// static graphs because real SIMT hardware reconverges at compiler-known
// post-dominators, whereas the analyzer reconstructs the graph dynamically
// from traces.
func FromFunction(f *ir.Function) *DCFG {
	g := newDCFG(uint32(f.ID), len(f.Blocks))
	g.observeEntry(0)
	for _, b := range f.Blocks {
		from := int32(b.ID)
		term := b.Terminator()
		switch term.Op {
		case ir.OpJmp:
			g.addEdge(from, int32(term.Target))
		case ir.OpJcc:
			g.addEdge(from, int32(term.Target))
			g.addEdge(from, int32(term.Fall))
		case ir.OpSwitch:
			for _, t := range term.Targets {
				g.addEdge(from, int32(t))
			}
		case ir.OpCall, ir.OpCallR:
			// Per-function graphs treat a call as flowing to its
			// continuation; the callee has its own graph.
			g.addEdge(from, int32(term.Fall))
		case ir.OpRet:
			g.addEdge(from, g.ExitNode())
		}
	}
	g.sortEdges()
	return g
}

// FromProgram builds static CFGs for every function of a program, keyed by
// function id.
func FromProgram(p *ir.Program) map[uint32]*DCFG {
	out := make(map[uint32]*DCFG, len(p.Funcs))
	for _, f := range p.Funcs {
		out[uint32(f.ID)] = FromFunction(f)
	}
	return out
}
