package analysis

import (
	"fmt"
	"sort"

	"threadfuser/internal/trace"
)

// lockLintPass diagnoses synchronization: runtime lock leaks (acquired,
// never released), releases without acquires, recursive acquisitions,
// lock-order inversions, static acquire sites with a release-free path to
// the function's virtual exit, and critical sections whose intra-warp
// serialization dominates a function's efficiency loss (comparing the
// fine-grain-locking replay against the lock-emulating one, the paper's
// figure-9 axis).
type lockLintPass struct{}

func (lockLintPass) ID() string { return "locks" }
func (lockLintPass) Desc() string {
	return "leaked/nested/inverted lock patterns and critical sections that dominate serialization cost"
}

// Serialization-cost thresholds: a function must lose this much of its own
// efficiency under lock emulation, while carrying a minimum share of the
// program's instructions, before it is reported.
const (
	lockInfoDrop   = 0.02
	lockWarnDrop   = 0.10
	lockMinShare   = 0.01
	lockWarnShare  = 0.05
	maxLeakReports = 20
)

// lockSite is a static lock-operation location.
type lockSite struct {
	fn    uint32
	block uint32
	instr uint16
}

type lockAgg struct {
	count   int
	minAddr uint64
	threads map[int]bool
}

func aggAt(m map[lockSite]*lockAgg, site lockSite, addr uint64, tid int) {
	a := m[site]
	if a == nil {
		a = &lockAgg{minAddr: addr, threads: make(map[int]bool)}
		m[site] = a
	}
	a.count++
	if addr < a.minAddr {
		a.minAddr = addr
	}
	a.threads[tid] = true
}

func (lockLintPass) Run(ctx *Context) error {
	t := ctx.Trace

	type blockKey struct {
		fn    uint32
		block uint32
	}
	var (
		leaks      = map[lockSite]*lockAgg{} // held at end of thread
		recursive  = map[lockSite]*lockAgg{} // acquire of an already-held lock
		orphanRels = map[lockSite]*lockAgg{} // release without acquire
		orderPairs = map[[2]uint64]bool{}    // (held, then-acquired) lock pairs
		openAcq    = map[blockKey]uint16{}   // blocks acquiring without an in-block release
		hasRelease = map[blockKey]bool{}     // blocks containing any release
	)

	type heldAt struct {
		site  lockSite
		depth int
	}
	for _, th := range t.Threads {
		held := map[uint64]*heldAt{}
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			bk := blockKey{r.Func, r.Block}
			for li := range r.Locks {
				l := &r.Locks[li]
				site := lockSite{r.Func, r.Block, l.Instr}
				if l.Release {
					hasRelease[bk] = true
					h := held[l.Addr]
					if h == nil {
						aggAt(orphanRels, site, l.Addr, th.TID)
						continue
					}
					h.depth--
					if h.depth == 0 {
						delete(held, l.Addr)
					}
					continue
				}
				if h := held[l.Addr]; h != nil {
					aggAt(recursive, site, l.Addr, th.TID)
					h.depth++
					continue
				}
				for other := range held {
					orderPairs[[2]uint64{other, l.Addr}] = true
				}
				held[l.Addr] = &heldAt{site: site, depth: 1}
				// Static view: an acquire with no release of the same lock
				// later in this block leaves the block holding it.
				released := false
				for lj := li + 1; lj < len(r.Locks); lj++ {
					if r.Locks[lj].Release && r.Locks[lj].Addr == l.Addr {
						released = true
						break
					}
				}
				if !released {
					if _, seen := openAcq[bk]; !seen {
						openAcq[bk] = l.Instr
					}
				}
			}
		}
		for addr, h := range held {
			aggAt(leaks, h.site, addr, th.TID)
		}
	}

	emit := func(m map[lockSite]*lockAgg, sev Severity, format string) {
		sites := make([]lockSite, 0, len(m))
		for s := range m {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i], sites[j]
			if a.fn != b.fn {
				return a.fn < b.fn
			}
			if a.block != b.block {
				return a.block < b.block
			}
			return a.instr < b.instr
		})
		for i, s := range sites {
			if i >= maxLeakReports {
				f := finding("locks", sev)
				f.Message = fmt.Sprintf("%d further site(s) suppressed", len(sites)-i)
				ctx.add(f)
				break
			}
			a := m[s]
			f := finding("locks", sev)
			f.Function = t.FuncName(s.fn)
			f.Block = int32(s.block)
			f.Addr = a.minAddr
			f.Threads = sortedInts(a.threads)
			f.Message = fmt.Sprintf(format, s.instr, a.count, a.minAddr, intsCSV(f.Threads))
			ctx.add(f)
		}
	}
	emit(leaks, SevError, "lock acquired at instruction %d is never released: %d leaked acquisition(s), first lock word 0x%x, threads %s")
	emit(recursive, SevWarning, "recursive acquisition at instruction %d of a lock already held: %d occurrence(s), first lock word 0x%x, threads %s")
	emit(orphanRels, SevWarning, "release at instruction %d without a matching acquire: %d occurrence(s), first lock word 0x%x, threads %s")

	// Lock-order inversions: the same two locks acquired in both orders by
	// some pair of threads is the classic deadlock recipe (the trace's
	// non-blocking locks hide it; real mutexes would not).
	var inversions [][2]uint64
	for p := range orderPairs {
		if p[0] < p[1] && orderPairs[[2]uint64{p[1], p[0]}] {
			inversions = append(inversions, p)
		}
	}
	sort.Slice(inversions, func(i, j int) bool {
		if inversions[i][0] != inversions[j][0] {
			return inversions[i][0] < inversions[j][0]
		}
		return inversions[i][1] < inversions[j][1]
	})
	for _, p := range inversions {
		f := finding("locks", SevWarning)
		f.Addr = p[0]
		f.Message = fmt.Sprintf("lock-order inversion: locks 0x%x and 0x%x are acquired in both orders (potential deadlock under blocking mutexes)", p[0], p[1])
		ctx.add(f)
	}

	// Static leak paths: from a block that ends holding a lock, can the
	// function's virtual exit be reached without ever passing a block that
	// releases one? Complements the runtime leak check — it also fires when
	// the traced threads happened to take the releasing path.
	openKeys := make([]blockKey, 0, len(openAcq))
	for bk := range openAcq {
		openKeys = append(openKeys, bk)
	}
	sort.Slice(openKeys, func(i, j int) bool {
		if openKeys[i].fn != openKeys[j].fn {
			return openKeys[i].fn < openKeys[j].fn
		}
		return openKeys[i].block < openKeys[j].block
	})
	for _, bk := range openKeys {
		g := ctx.Graphs[bk.fn]
		if g == nil {
			continue
		}
		seen := make(map[int32]bool)
		work := append([]int32(nil), g.Succs(int32(bk.block))...)
		leaky := false
		for len(work) > 0 && !leaky {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			if seen[blk] {
				continue
			}
			seen[blk] = true
			if blk == g.ExitNode() {
				leaky = true
				break
			}
			if hasRelease[blockKey{bk.fn, uint32(blk)}] {
				continue // this path releases; stop exploring through it
			}
			work = append(work, g.Succs(blk)...)
		}
		if leaky {
			f := finding("locks", SevWarning)
			f.Function = t.FuncName(bk.fn)
			f.Block = int32(bk.block)
			f.Message = fmt.Sprintf("lock acquired at instruction %d has a release-free path to the function exit (possible leak)", openAcq[bk])
			ctx.add(f)
		}
	}

	// Serialization cost: compare each function's own efficiency between
	// the fine-grain-locking replay and the lock-emulating one.
	if len(hasRelease) == 0 && len(openAcq) == 0 {
		return nil // no locks anywhere; skip the second replay
	}
	base, err := ctx.Report(false)
	if err != nil {
		return err
	}
	locked, err := ctx.Report(true)
	if err != nil {
		return err
	}
	for _, fr := range locked.PerFunction {
		if fr.LockSerializations == 0 || fr.InstrShare < lockMinShare {
			continue
		}
		b, ok := base.Function(fr.Name)
		if !ok {
			continue
		}
		drop := b.Efficiency - fr.Efficiency
		if drop < lockInfoDrop {
			continue
		}
		sev := SevInfo
		if drop >= lockWarnDrop && fr.InstrShare >= lockWarnShare {
			sev = SevWarning
		}
		f := finding("locks", sev)
		f.Function = fr.Name
		f.Message = fmt.Sprintf("critical sections serialize warps: own efficiency %.1f%% -> %.1f%% under lock emulation (%d serialization event(s), %d serialized lane(s), %.1f%% of program instructions)",
			b.Efficiency*100, fr.Efficiency*100, fr.LockSerializations, fr.SerializedLanes, fr.InstrShare*100)
		f.Details = map[string]string{
			"efficiency_drop": fmt.Sprintf("%.3f", drop),
			"serializations":  fmt.Sprintf("%d", fr.LockSerializations),
		}
		ctx.add(f)
	}
	return nil
}
