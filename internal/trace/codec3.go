package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"threadfuser/internal/pool"
)

// Version 3 of the .tft format keeps the v2 delta-encoded record stream but
// appends a per-thread index footer, so readers can decode the header (the
// function table) without touching thread data and can seek to any thread
// independently. That is what makes paper-scale ingest parallel: a 42K-thread
// trace decodes one thread section per worker instead of one byte stream per
// file.
//
// Layout:
//
//	header   magic "TFTR" | version=3 | program | entry | functable | nthreads
//	threads  nthreads × { tid uvarint, nrecords uvarint, v2-encoded records }
//	         (address deltas reset at each thread, as in v2)
//	footer   headerlen uvarint | nthreads uvarint
//	         nthreads × { tid uvarint, offset uvarint, length uvarint,
//	                      nrecords uvarint, nmem uvarint, nlocks uvarint }
//	         (offsets are absolute file offsets of each thread section;
//	         nrecords/nmem/nlocks are the section's table sizes, which let a
//	         parallel decode preallocate exact columnar arrays and hand each
//	         worker a disjoint sub-range to fill)
//	trailer  footerlen uint64 LE | magic "TFXI"     (fixed 12 bytes)
//
// The trailer is fixed-size so a reader finds the footer by reading the last
// 12 bytes and seeking back footerlen more. A v3 stream read front to back is
// a valid v2-style stream followed by bytes Decode never consumes, which is
// how Decode handles v3 transparently.

const (
	version3     = 3
	indexMagic   = "TFXI"
	trailerSize  = 12 // uint64 footer length + 4-byte index magic
	minIndexSize = trailerSize + 3
)

// ErrNoIndex reports that a .tft input has no usable thread index: it is a
// v1/v2 file, or its footer is missing, truncated, or corrupt. Callers fall
// back to the sequential whole-stream Decode; an unreadable index never makes
// an otherwise-decodable trace unreadable.
var ErrNoIndex = errors.New("trace: no thread index")

// Header is the metadata section of a .tft file: everything before the
// per-thread event streams. ReadHeader returns it without decoding any
// thread data.
type Header struct {
	Version    int
	Program    string
	Entry      uint32
	Funcs      []FuncInfo
	NumThreads int
}

// ReadHeader decodes only the metadata section of a .tft stream (any
// version): program name, entry function, function table, and thread count.
// It consumes nothing past the header — varints are read byte by byte and
// bulk reads ask for exactly the bytes they need — so on any version the
// reader is left positioned at the first thread section. Callers reading
// from a raw file may wrap r in a bufio.Reader if they do not care where the
// underlying stream is left.
func ReadHeader(r io.Reader) (*Header, error) {
	d := &decoder{r: &oneByteReader{r: r}}
	h := d.header()
	if d.err != nil {
		return nil, fmt.Errorf("trace: header: %w", d.err)
	}
	return h, nil
}

// oneByteReader adapts an io.Reader into a byteReader whose ReadByte pulls
// exactly one byte from the underlying stream, so header decoding never
// buffers past the header block the way a bufio wrapper would.
type oneByteReader struct {
	r   io.Reader
	one [1]byte
}

func (o *oneByteReader) ReadByte() (byte, error) {
	for {
		n, err := o.r.Read(o.one[:])
		if n == 1 {
			return o.one[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// Read delegates: the decoder's bulk reads (magic, strings) already request
// exactly the bytes they consume.
func (o *oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// EncodeIndexed writes the trace to w in the indexed v3 format.
func EncodeIndexed(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &encoder{w: bw}
	e.bytes([]byte(magic))
	e.uvarint(version3)
	e.str(t.Program)
	e.uvarint(uint64(t.Entry))
	e.uvarint(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		e.str(f.Name)
		e.uvarint(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.uvarint(uint64(b.NInstr))
		}
	}
	e.uvarint(uint64(len(t.Threads)))
	headerLen := e.n
	index := make([]indexEntry, len(t.Threads))
	for i, th := range t.Threads {
		off := e.n
		e.uvarint(uint64(th.TID))
		e.uvarint(uint64(len(th.Records)))
		var prevAddr uint64
		var nmem, nlock int64
		for j := range th.Records {
			prevAddr = e.record2(&th.Records[j], prevAddr)
			nmem += int64(len(th.Records[j].Mem))
			nlock += int64(len(th.Records[j].Locks))
		}
		index[i] = indexEntry{
			tid: th.TID, off: off, len: e.n - off,
			nrec: int64(len(th.Records)), nmem: nmem, nlock: nlock,
		}
	}
	footerOff := e.n
	e.uvarint(uint64(headerLen))
	e.uvarint(uint64(len(index)))
	for _, en := range index {
		e.uvarint(uint64(en.tid))
		e.uvarint(uint64(en.off))
		e.uvarint(uint64(en.len))
		e.uvarint(uint64(en.nrec))
		e.uvarint(uint64(en.nmem))
		e.uvarint(uint64(en.nlock))
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(e.n-footerOff))
	copy(trailer[8:], indexMagic)
	e.bytes(trailer[:])
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// WriteFileIndexed encodes the trace to the named file in v3 format.
func WriteFileIndexed(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeIndexed(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type indexEntry struct {
	tid      int
	off, len int64
	// Columnar table sizes of the section: record, memory-access, and
	// lock-op counts. They turn parallel decode into exact preallocation
	// plus disjoint-range fills instead of per-worker allocation.
	nrec, nmem, nlock int64
}

// Reader provides random access to the thread sections of an indexed v3
// trace. Thread decodes are independent of each other, so a Reader is safe
// for concurrent use by multiple goroutines.
type Reader struct {
	ra     io.ReaderAt
	size   int64
	hdr    *Header
	index  []indexEntry
	closer io.Closer
}

// NewReader validates the index footer of a v3 trace held in ra. Any input
// without a usable index — a v1/v2 file, a truncated footer, offsets past
// EOF — yields an error wrapping ErrNoIndex so callers can fall back to the
// sequential Decode.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < minIndexSize {
		return nil, fmt.Errorf("%w: %d-byte input is too short for a footer", ErrNoIndex, size)
	}
	var trailer [trailerSize]byte
	if _, err := ra.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("%w: reading trailer: %v", ErrNoIndex, err)
	}
	if string(trailer[8:]) != indexMagic {
		return nil, fmt.Errorf("%w: no trailer magic", ErrNoIndex)
	}
	footerLen := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerLen <= 0 || footerLen > size-trailerSize {
		return nil, fmt.Errorf("%w: implausible footer length %d in a %d-byte file", ErrNoIndex, footerLen, size)
	}
	footerOff := size - trailerSize - footerLen
	d := &decoder{r: bufio.NewReaderSize(io.NewSectionReader(ra, footerOff, footerLen), 1<<12)}
	headerLen := int64(d.uvarint())
	n := d.count("thread", d.uvarint())
	if d.err != nil {
		return nil, fmt.Errorf("%w: decoding footer: %v", ErrNoIndex, d.err)
	}
	index := make([]indexEntry, 0, preallocCap(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		e := indexEntry{
			tid:   int(d.uvarint()),
			off:   int64(d.uvarint()),
			len:   int64(d.uvarint()),
			nrec:  int64(d.count("record", d.uvarint())),
			nmem:  int64(d.uvarint()),
			nlock: int64(d.uvarint()),
		}
		if d.err != nil {
			break
		}
		if e.off < headerLen || e.len < 0 || e.off+e.len > footerOff {
			return nil, fmt.Errorf("%w: thread %d section [%d,+%d) outside data region [%d,%d)",
				ErrNoIndex, e.tid, e.off, e.len, headerLen, footerOff)
		}
		// Every record and table entry costs at least one stream byte, so
		// counts exceeding the section length cannot be honest. (The record
		// count additionally went through the shared maxCount cap above,
		// matching what the stream decoder enforces per thread.)
		if e.nrec > e.len || e.nmem > e.len || e.nlock > e.len {
			return nil, fmt.Errorf("%w: thread %d section declares implausible table sizes %d/%d/%d for %d bytes",
				ErrNoIndex, e.tid, e.nrec, e.nmem, e.nlock, e.len)
		}
		index = append(index, e)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: decoding footer: %v", ErrNoIndex, d.err)
	}
	if headerLen <= 0 || headerLen > footerOff {
		return nil, fmt.Errorf("%w: implausible header length %d", ErrNoIndex, headerLen)
	}
	// The section is exactly the header, so buffered reads cannot overshoot
	// into thread data; bufio keeps the byte-at-a-time header decode cheap.
	hdr, err := ReadHeader(bufio.NewReaderSize(io.NewSectionReader(ra, 0, headerLen), 1<<12))
	if err != nil {
		return nil, err
	}
	if hdr.Version != version3 {
		return nil, fmt.Errorf("%w: version %d file carries a footer", ErrNoIndex, hdr.Version)
	}
	if hdr.NumThreads != len(index) {
		return nil, fmt.Errorf("%w: header declares %d threads, index has %d", ErrNoIndex, hdr.NumThreads, len(index))
	}
	return &Reader{ra: ra, size: size, hdr: hdr, index: index}, nil
}

// OpenFile opens the named .tft file as an indexed Reader. The caller must
// Close it. A file without a usable index fails with ErrNoIndex.
//
// Every error return closes the file: long-running servers call this once
// per request on untrusted uploads, so an early return that held the handle
// would leak a descriptor per malformed input. The single deferred cleanup
// (instead of per-return Close calls) makes that invariant structural —
// any future early return is covered automatically; the leak-check test
// pins it.
func OpenFile(path string) (r *Reader, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	r, err = NewReader(f, st.Size())
	if err != nil {
		return nil, err
	}
	r.closer = f
	return r, nil
}

// Close releases the underlying file when the Reader owns one (OpenFile).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Header returns the trace's metadata section.
func (r *Reader) Header() *Header { return r.hdr }

// NumThreads returns the number of thread sections in the index.
func (r *Reader) NumThreads() int { return len(r.index) }

// TID returns the thread id of section i without decoding it.
func (r *Reader) TID(i int) int { return r.index[i].tid }

// Thread decodes thread section i into a per-thread mini arena: one exact
// read of the section bytes, then exact-capacity record/access/lock tables
// sized from the index counts. Sections decode independently (address deltas
// reset per thread), so concurrent calls are safe.
func (r *Reader) Thread(i int) (*ThreadTrace, error) {
	th, _, err := r.thread(i, nil)
	return th, err
}

// thread decodes section i using buf as scratch when it is large enough,
// returning the (possibly grown) scratch buffer for reuse.
func (r *Reader) thread(i int, buf []byte) (*ThreadTrace, []byte, error) {
	if i < 0 || i >= len(r.index) {
		return nil, buf, fmt.Errorf("trace: thread section %d out of range [0,%d)", i, len(r.index))
	}
	en := r.index[i]
	if int64(cap(buf)) < en.len {
		buf = make([]byte, en.len)
	}
	b := buf[:en.len]
	if _, err := r.ra.ReadAt(b, en.off); err != nil {
		return nil, buf, fmt.Errorf("trace: thread section %d (tid %d): %w", i, en.tid, err)
	}
	th, err := threadFromSection(b, en, r.hdr.Version)
	if err != nil {
		return nil, buf, fmt.Errorf("trace: thread section %d (tid %d): %w", i, en.tid, err)
	}
	if th.TID != en.tid {
		return nil, buf, fmt.Errorf("trace: thread section %d decodes tid %d, index says %d", i, th.TID, en.tid)
	}
	return th, buf, nil
}

// threadFromSection decodes one thread's section bytes into a private mini
// arena. The index counts size the tables exactly; a lying index merely
// costs append growth before the stream decode detects the mismatch.
func threadFromSection(data []byte, en indexEntry, version int) (*ThreadTrace, error) {
	a := &Arena{
		Spans:   make([]Span, 0, 1),
		Records: make([]Record, 0, en.nrec),
		Mem:     make([]MemAccess, 0, en.nmem),
		Locks:   make([]LockOp, 0, en.nlock),
		MemOff:  make([]uint32, 1, en.nrec+1),
		LockOff: make([]uint32, 1, en.nrec+1),
	}
	d := &bdec{data: data}
	a.appendThread(d, version)
	if d.err != nil {
		return nil, d.err
	}
	a.fixup(0, len(a.Records))
	sp := a.Spans[0]
	return &ThreadTrace{TID: sp.TID, Records: a.Records[sp.Lo:sp.Hi]}, nil
}

// Iter returns an iterator over the thread sections in file order. Each
// Next decodes exactly one section, so a consumer that processes threads one
// at a time never materializes the whole trace.
func (r *Reader) Iter() *ThreadIter { return &ThreadIter{r: r} }

// ThreadIter yields one ThreadTrace per Next call. The iterator reuses one
// scratch buffer for section bytes across threads, so it is not safe for
// concurrent use (the decoded ThreadTraces themselves are independent).
type ThreadIter struct {
	r   *Reader
	i   int
	buf []byte
}

// Next decodes and returns the next thread section, or (nil, io.EOF) after
// the last one.
func (it *ThreadIter) Next() (*ThreadTrace, error) {
	if it.i >= it.r.NumThreads() {
		return nil, io.EOF
	}
	th, buf, err := it.r.thread(it.i, it.buf)
	it.buf = buf
	it.i++
	return th, err
}

// DecodeParallel decodes a trace from ra, fanning per-thread section decodes
// out over a bounded worker pool (parallelism 0 = one worker per core, 1 =
// serial). The input is read into memory once; the index footer's per-thread
// table sizes are prefix-summed into one exactly-sized allocation per arena
// column, and each worker fills its thread's disjoint sub-range of those
// shared arrays — no per-worker copies, so parallel decode allocates the
// same bytes as serial. Assembly is deterministic: threads land at their
// index position, so the result is identical to Decode at every parallelism.
//
// The sequential path is taken outright when it would win: pool.Workers —
// the same resolver the SIMT replay pool uses per warp — resolves the
// section count and parallelism limit to one worker (parallelism 1,
// GOMAXPROCS=1 with parallelism 0, or fewer sections than
// pool.MinParallelItems). Inputs without a usable index (v1/v2 files,
// corrupt footers) degrade to the sequential whole-stream decode rather
// than erroring, as does an index whose counts turn out to disagree with
// the stream — only the stream is trusted.
func DecodeParallel(ra io.ReaderAt, size int64, parallelism int) (*Trace, error) {
	data, err := readAllAt(ra, size)
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	r, err := NewReader(bytes.NewReader(data), size)
	if err != nil {
		if errors.Is(err, ErrNoIndex) {
			return DecodeBytes(data)
		}
		return nil, err
	}
	workers := pool.Workers(parallelism, r.NumThreads())
	if workers <= 1 {
		return DecodeBytes(data)
	}
	t, err := decodeArenaParallel(data, r, workers)
	if err != nil {
		// The index disagreed with the stream. The stream may still be
		// perfectly decodable (only the footer lied), so degrade to the
		// sequential decode, which trusts nothing but the stream.
		return DecodeBytes(data)
	}
	return t, nil
}

// readAllAt reads the whole [0,size) range of ra into one exactly-sized
// allocation.
func readAllAt(ra io.ReaderAt, size int64) ([]byte, error) {
	if size < 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("implausible input size %d", size)
	}
	data := make([]byte, size)
	if n, err := ra.ReadAt(data, 0); n < len(data) && err != nil {
		return nil, err
	}
	return data, nil
}

// decodeArenaParallel fills one shared arena from the indexed sections of
// data: prefix sums over the index counts partition each column into
// disjoint per-thread ranges, and a worker pool fills them concurrently.
// Any stream/index disagreement surfaces as an error; the caller falls back
// to sequential decode.
func decodeArenaParallel(data []byte, r *Reader, workers int) (*Trace, error) {
	n := len(r.index)
	recLo := make([]int, n+1)
	memLo := make([]int, n+1)
	lockLo := make([]int, n+1)
	for i, en := range r.index {
		recLo[i+1] = recLo[i] + int(en.nrec)
		memLo[i+1] = memLo[i] + int(en.nmem)
		lockLo[i+1] = lockLo[i] + int(en.nlock)
	}
	a := &Arena{}
	if err := a.sizeFromIndex(r); err != nil {
		return nil, err
	}
	g := pool.New(workers)
	for i := range r.index {
		i := i
		g.Go(func() error {
			en := r.index[i]
			return a.fillSection(data[en.off:en.off+en.len], en, i, recLo[i], memLo[i], lockLo[i])
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return a.Trace(r.hdr.Program, r.hdr.Entry, r.hdr.Funcs), nil
}

// ReadFileParallel decodes the named .tft file with DecodeParallel.
func ReadFileParallel(path string, parallelism int) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return DecodeParallel(f, st.Size(), parallelism)
}
