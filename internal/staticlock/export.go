package staticlock

import (
	"threadfuser/internal/ir"
)

// This file exports the package's symbolic linear-address machinery — the
// c + Σcoeff·root abstract domain and its interprocedural fixpoint — to the
// other static oracles. internal/staticmem classifies every load/store site
// by per-lane tid-stride over exactly the same converged register states the
// lock-shape analysis uses, so the two oracles can never disagree about what
// an address expression "is". The exported surface is read-only: a Symbolic
// hands out copies of block-entry states that callers step forward privately.

// Symbolic is the converged interprocedural symbolic-address fixpoint over a
// program: per function, the joined register state at every reached block
// entry. Obtain one with AnalyzeSymbolic; the value is immutable and safe
// for concurrent readers.
type Symbolic struct {
	a *analysis
}

// AnalyzeSymbolic runs the interprocedural symbolic dataflow (the phase-1
// fixpoint of the static concurrency oracle) over a program. Functions with
// no static call path from the entry are analyzed standalone under an
// all-unknown entry (see Phantom).
func AnalyzeSymbolic(p *ir.Program) *Symbolic {
	a := newAnalysis(p)
	a.run()
	return &Symbolic{a: a}
}

// Phantom reports whether the function has no static call path from the
// program entry: it was analyzed under an all-unknown entry state, so every
// shape inside it is worst-case.
func (s *Symbolic) Phantom(fn int) bool {
	return s.a.fns[fn].phantom
}

// BlockReached reports whether the fixpoint reached the block. Unreached
// blocks have no meaningful entry state (their addresses render as TopShape).
func (s *Symbolic) BlockReached(fn, block int) bool {
	fs := s.a.fns[fn]
	return block < len(fs.inSeen) && fs.inSeen[block]
}

// BlockState returns a copy of the converged register state at the block's
// entry. The copy is the caller's to mutate: Step it across the block's
// non-terminator instructions to obtain the state at each site.
func (s *Symbolic) BlockState(fn, block int) SymState {
	return SymState{st: s.a.fns[fn].in[block]}
}

// SymState is one mutable symbolic register state, stepped forward
// instruction by instruction inside a block.
type SymState struct {
	st state
}

// Step interprets one instruction over the state. Terminators are ignored
// (they have no register effect the domain tracks).
func (st *SymState) Step(in *ir.Instr) {
	if !in.Op.IsTerminator() {
		transferInstr(&st.st, in)
	}
}

// Addr evaluates a memory operand's effective address
// (base + scale·index + disp) over the current state.
func (st *SymState) Addr(m ir.MemRef) SymAddr {
	return SymAddr{v: addrOf(&st.st, m)}
}

// SymAddr is one symbolic effective address.
type SymAddr struct {
	v symval
}

// Precise reports a fully-known linear address (neither unknown nor
// unreached-bottom).
func (a SymAddr) Precise() bool { return a.v.precise() }

// Uniform reports an address that is identical for every thread of a run:
// linear over arg roots and constants only (the shared-world assumption of
// DESIGN.md §13 gives arg roots that meaning).
func (a SymAddr) Uniform() bool { return a.v.named() }

// TIDCoeff returns the tid term's coefficient: the address's explicit
// per-thread stride in bytes. Meaningful only when Precise.
func (a SymAddr) TIDCoeff() int64 { return a.v.tidCoeff() }

// SPCoeff returns the sp term's coefficient. The entry stack pointer itself
// strides by vm.StackSize per thread, so an address's effective per-thread
// stride is TIDCoeff() + SPCoeff()·vm.StackSize.
func (a SymAddr) SPCoeff() int64 { return a.v.coeffOf(rootSP) }

// SPRooted reports a linear address containing the sp root — an address in
// the thread's private stack segment.
func (a SymAddr) SPRooted() bool { return a.v.spRooted() }

// Shape renders the canonical string form of the address ("?" when unknown),
// the same identity rendering the lock oracle uses.
func (a SymAddr) Shape() string { return a.v.shape() }
