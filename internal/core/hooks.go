package core

import (
	"encoding/hex"

	"threadfuser/internal/trace"
)

// SetReplayTestHook installs f to be called on every replay that actually
// runs (a cache hit never fires it) and returns a function restoring the
// previous hook. Tests outside this package — the cache's zero-replay-on-hit
// proof, the service's exactly-once singleflight proof — use it to count or
// gate replays. It is not synchronized with in-flight analyses: install it
// before starting work and restore it after the work has drained.
func SetReplayTestHook(f func()) (restore func()) {
	prev := testHookReplay
	testHookReplay = f
	return func() { testHookReplay = prev }
}

// TraceDigest returns the hex-encoded content digest of a trace — the trace
// half of the report-cache key. It hashes decoded rows, not container bytes,
// so the same trace digests identically whichever .tft version (or in-memory
// construction) it arrived through. The analysis service keys singleflight
// deduplication of in-flight work on it.
func TraceDigest(t *trace.Trace) (string, error) {
	sum, err := traceDigest(t)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sum[:]), nil
}

// CacheKey returns the full content-addressed key AnalyzeCached files a
// (trace, options) analysis under: the trace digest mixed with the schema
// tag and the semantic options (Parallelism, Listener, and Context excluded).
func CacheKey(t *trace.Trace, opts Options) (string, error) {
	return cacheKey(t, opts)
}
