package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// Paropoly workloads (Table I): BFS, Connected Components, PageRank, N-body.
// The paper reimplemented three graph applications "with complex control
// flow graph" using pthreads, plus the N-body kernel that anchors the
// high-efficiency end of figure 1.

var wlParoBFS = register(&Workload{
	Name:           "paropoly.bfs",
	Suite:          SuiteParopoly,
	Desc:           "level-synchronous BFS with per-node colour checks and nested neighbour filters",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		degree := cfg.scale(6)
		pb := ir.NewBuilder("paropoly.bfs")
		w := pb.NewFunc("worker")
		// Args: r0=offsets, r1=edges, r2=level, r3=curLevel (imm in reg).
		pre := w.NewBlock("pre")
		mine := w.NewBlock("mine")
		skip := w.NewBlock("skip")
		pre.Mov(rg(4), idx8(2, int(ir.TID), 8, 0)).
			Cmp(rg(4), rg(3)).
			Jcc(ir.CondEQ, mine, skip)
		skip.Ret()
		mine.Mov(rg(5), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(6), idx8(0, int(ir.TID), 8, 8))
		head := w.NewBlock("head")
		examine := w.NewBlock("examine")
		relax := w.NewBlock("relax")
		advance := w.NewBlock("advance")
		done := w.NewBlock("done")
		mine.Jmp(head)
		head.Cmp(rg(5), rg(6)).Jcc(ir.CondGE, done, examine)
		examine.Mov(rg(7), idx8(1, 5, 8, 0)). // v
							Mov(rg(8), idx8(2, 7, 8, 0)). // level[v]
							Cmp(rg(8), im(-1)).
							Jcc(ir.CondEQ, relax, advance)
		relax.Mov(rg(8), rg(3)).
			Add(rg(8), im(1)).
			Mov(idx8(2, 7, 8, 0), rg(8)).
			Jmp(advance)
		advance.Add(rg(5), im(1)).Jmp(head)
		done.Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			g := randGraph(r, cfg.Threads, degree)
			offsets, edges := g.store(p)
			level := p.AllocGlobal(uint64(8 * cfg.Threads))
			const cur = 2
			for i := 0; i < cfg.Threads; i++ {
				lv := int64(-1)
				switch r.Intn(4) {
				case 0:
					lv = cur // on the current level: this thread expands
				case 1:
					lv = int64(r.Intn(int(cur))) // already visited
				}
				p.WriteI64(level+uint64(8*i), lv)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(offsets))
				th.SetReg(ir.R(1), int64(edges))
				th.SetReg(ir.R(2), int64(level))
				th.SetReg(ir.R(3), cur)
			}, nil
		}
		return prog, setup, nil
	},
})

var wlParoCC = register(&Workload{
	Name:           "paropoly.cc",
	Suite:          SuiteParopoly,
	Desc:           "connected components hooking step: neighbour scans with conditional min-label updates",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		degree := cfg.scale(6)
		pb := ir.NewBuilder("paropoly.cc")
		w := pb.NewFunc("worker")
		// Args: r0=offsets, r1=edges, r2=comp.
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), idx8(2, int(ir.TID), 8, 0)). // my comp
								Mov(rg(4), idx8(0, int(ir.TID), 8, 0)).
								Mov(rg(5), idx8(0, int(ir.TID), 8, 8))
		head := w.NewBlock("head")
		look := w.NewBlock("look")
		hook := w.NewBlock("hook")
		advance := w.NewBlock("advance")
		done := w.NewBlock("done")
		pre.Jmp(head)
		head.Cmp(rg(4), rg(5)).Jcc(ir.CondGE, done, look)
		look.Mov(rg(6), idx8(1, 4, 8, 0)). // v
							Mov(rg(7), idx8(2, 6, 8, 0)). // comp[v]
							Cmp(rg(7), rg(3)).
							Jcc(ir.CondLT, hook, advance)
		hook.Mov(rg(3), rg(7)).
			Mov(idx8(2, int(ir.TID), 8, 0), rg(3)).
			Jmp(advance)
		advance.Add(rg(4), im(1)).Jmp(head)
		done.Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			g := randGraph(r, cfg.Threads, degree)
			offsets, edges := g.store(p)
			comp := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(comp+uint64(8*i), int64(i))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(offsets))
				th.SetReg(ir.R(1), int64(edges))
				th.SetReg(ir.R(2), int64(comp))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlParoPageRank = register(&Workload{
	Name:           "paropoly.pagerank",
	Suite:          SuiteParopoly,
	Desc:           "pagerank iteration: degree-divergent neighbour sums with convergent rank update",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		degree := cfg.scale(6)
		pb := ir.NewBuilder("paropoly.pagerank")
		w := pb.NewFunc("worker")
		// Args: r0=offsets, r1=edges, r2=rank, r3=outdeg, r4=next rank.
		pre := w.NewBlock("pre")
		pre.Mov(rg(5), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(6), idx8(0, int(ir.TID), 8, 8)).
			Mov(rg(9), im(0)) // sum
		head := w.NewBlock("head")
		body := w.NewBlock("body")
		tail := w.NewBlock("tail")
		pre.Jmp(head)
		head.Cmp(rg(5), rg(6)).Jcc(ir.CondGE, tail, body)
		body.Mov(rg(7), idx8(1, 5, 8, 0)). // v
							Mov(rg(8), idx8(2, 7, 8, 0)).  // rank[v]
							FDiv(rg(8), idx8(3, 7, 8, 0)). // / outdeg[v]
							FAdd(rg(9), rg(8)).
							Add(rg(5), im(1)).
							Jmp(head)
		// rank' = base + damping*sum; damping in r13, base in r14 (set by
		// the per-thread argument initializer).
		tail.FMul(rg(9), rg(13)).
			FAdd(rg(9), rg(14)).
			Mov(idx8(4, int(ir.TID), 8, 0), rg(9)).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			g := randGraph(r, cfg.Threads, degree)
			offsets, edges := g.store(p)
			n := cfg.Threads
			rank := p.AllocGlobal(uint64(8 * n))
			outdeg := p.AllocGlobal(uint64(8 * n))
			next := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < n; i++ {
				p.WriteF64(rank+uint64(8*i), 1/float64(n))
				p.WriteF64(outdeg+uint64(8*i), float64(g.offsets[i+1]-g.offsets[i]))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(offsets))
				th.SetReg(ir.R(1), int64(edges))
				th.SetReg(ir.R(2), int64(rank))
				th.SetReg(ir.R(3), int64(outdeg))
				th.SetReg(ir.R(4), int64(next))
				th.SetRegF(ir.R(13), 0.85)
				th.SetRegF(ir.R(14), 0.15/float64(n))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlParoNbody = register(&Workload{
	Name:           "paropoly.nbody",
	Suite:          SuiteParopoly,
	Desc:           "N-body force kernel: convergent O(n) inner loop with broadcast position loads",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		bodies := cfg.scale(48)
		pb := ir.NewBuilder("paropoly.nbody")
		w := pb.NewFunc("worker")
		// Args: r0=px, r1=py, r2=mass, r3=ax out, r4=ay out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(10), tid()).
			Rem(rg(10), im(int64(bodies))). // my body index
			Mov(rg(5), idx8(0, 10, 8, 0)).  // my x
			Mov(rg(6), idx8(1, 10, 8, 0)).  // my y
			Mov(rg(8), im(0)).              // ax
			Mov(rg(9), im(0))               // ay
		l := loopN(w, pre, "bodies", 7, 0, im(int64(bodies)))
		// dx = px[j]-x; dy = py[j]-y; inv = m[j]/ (sqrt(d2)*d2 + eps)
		l.Body.Mov(rg(13), idx8(0, 7, 8, 0)).
			FSub(rg(13), rg(5)).
			Mov(rg(14), idx8(1, 7, 8, 0)).
			FSub(rg(14), rg(6)).
			Mov(rg(15), rg(13)).
			FMul(rg(15), rg(13)).
			Mov(rg(12), rg(14)).
			FMul(rg(12), rg(14)).
			FAdd(rg(15), rg(12)). // d2
			FAdd(rg(15), rg(11)). // + eps (r11 holds softening)
			Mov(rg(12), rg(15)).
			FSqrt(rg(12)).
			FMul(rg(12), rg(15)).          // d3
			Mov(rg(15), idx8(2, 7, 8, 0)). // m[j]
			FDiv(rg(15), rg(12)).          // inv = m/d3
			FMul(rg(13), rg(15)).
			FMul(rg(14), rg(15)).
			FAdd(rg(8), rg(13)).
			FAdd(rg(9), rg(14))
		l.Next(l.Body)
		l.Exit.Mov(idx8(3, int(ir.TID), 8, 0), rg(8)).
			Mov(idx8(4, int(ir.TID), 8, 0), rg(9)).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			px := p.AllocGlobal(uint64(8 * bodies))
			py := p.AllocGlobal(uint64(8 * bodies))
			mass := p.AllocGlobal(uint64(8 * bodies))
			ax := p.AllocGlobal(uint64(8 * cfg.Threads))
			ay := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < bodies; i++ {
				p.WriteF64(px+uint64(8*i), r.NormFloat64())
				p.WriteF64(py+uint64(8*i), r.NormFloat64())
				p.WriteF64(mass+uint64(8*i), r.Float64()+0.1)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(px))
				th.SetReg(ir.R(1), int64(py))
				th.SetReg(ir.R(2), int64(mass))
				th.SetReg(ir.R(3), int64(ax))
				th.SetReg(ir.R(4), int64(ay))
				th.SetRegF(ir.R(11), 1e-6)
			}, nil
		}
		return prog, setup, nil
	},
})
