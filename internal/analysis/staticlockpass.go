package analysis

import (
	"fmt"
	"sort"
	"strings"

	"threadfuser/internal/staticlock"
)

// staticLockPass cross-checks the static concurrency oracle
// (internal/staticlock) against the dynamic lockset and lock-order passes.
// Like the static SIMT pass it needs Options.Prog; trace-only inputs skip
// it. The two disagreement directions carry opposite meanings:
//
//   - a dynamic lockset race, lock-order edge, or deadlock cycle with no
//     covering static candidate is a soundness bug in the oracle (SevError —
//     internal/check's "staticlockset" invariant enforces that this never
//     happens);
//   - a static race or cycle candidate the replay never confirmed is a
//     precision gap (SevInfo), the expected cost of a conservative dataflow.
//
// Acquires reachable under divergent control are additionally surfaced as
// SevWarning: an SIMT execution serializes them, and a self-looping critical
// section under divergence is the livelock shape.
type staticLockPass struct{}

func (staticLockPass) ID() string { return "staticlock" }
func (staticLockPass) Desc() string {
	return "static concurrency oracle vs dynamic replay: lockset/lock-order soundness, precision gaps, divergent acquires"
}

func (staticLockPass) Run(ctx *Context) error {
	prog := ctx.Opts.Prog
	if prog == nil {
		return nil // gated in RunSession; defensive
	}
	if mismatch := progTraceMismatch(prog, ctx.Trace); mismatch != "" {
		f := finding("staticlock", SevWarning)
		f.Message = fmt.Sprintf("attached program does not match the trace symbol table (%s); static comparison skipped", mismatch)
		ctx.add(f)
		return nil
	}

	sr := staticlock.Analyze(prog)
	races := DynamicRaceAccesses(ctx.Trace)
	order := DynamicLockOrder(ctx.Trace)

	fname := func(fn uint32) string {
		if int(fn) < len(prog.Funcs) {
			return prog.Funcs[fn].Name
		}
		return fmt.Sprintf("f%d", fn)
	}

	// Soundness (a): every dynamically racy address must land in a static
	// race-candidate class, and every access the dynamic pass saw with an
	// empty lockset must itself be a candidate.
	confirmedRace := map[int]bool{} // access classes with dynamic evidence
	for _, ra := range races {
		any := false
		for _, acc := range ra.Accesses {
			ai, ok := sr.AccessAt(acc.Func, acc.Block, acc.Instr)
			if !ok {
				f := finding("staticlock", SevError)
				f.Function = fname(acc.Func)
				f.Block = int32(acc.Block)
				f.Addr = ra.Addr
				f.Message = fmt.Sprintf("oracle soundness bug: dynamic access to racy addr 0x%x at instr %d has no static access entry", ra.Addr, acc.Instr)
				ctx.add(f)
				continue
			}
			sa := &sr.Accesses[ai]
			if sa.Class >= 0 {
				confirmedRace[sa.Class] = true
			}
			if sa.Candidate {
				any = true
			}
			if acc.Unlocked && !sa.Candidate {
				f := finding("staticlock", SevError)
				f.Function = fname(acc.Func)
				f.Block = int32(acc.Block)
				f.Addr = ra.Addr
				f.Message = fmt.Sprintf("oracle soundness bug: access %s i%d touched racy addr 0x%x with no lock held, but its static class (%s, kind %s) is not a race candidate",
					sa.Shape, acc.Instr, ra.Addr, classShapes(sr, sa.Class), sa.Kind)
				ctx.add(f)
			}
		}
		if !any {
			f := finding("staticlock", SevError)
			f.Addr = ra.Addr
			f.Message = fmt.Sprintf("oracle soundness bug: addr 0x%x raced in the replay but no access reaching it is a static race candidate", ra.Addr)
			ctx.add(f)
		}
	}

	// Soundness (b): every dynamic lock-order edge must exist between the
	// static shapes of its witness acquire sites.
	for _, e := range order.Edges {
		fi, okF := sr.SiteAt(e.FromSite.Func, e.FromSite.Block, e.FromSite.Instr)
		ti, okT := sr.SiteAt(e.ToSite.Func, e.ToSite.Block, e.ToSite.Instr)
		if !okF || !okT {
			f := finding("staticlock", SevError)
			f.Function = fname(e.ToSite.Func)
			f.Block = int32(e.ToSite.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: dynamic lock-order edge 0x%x->0x%x has acquire sites missing from the static site table", e.From, e.To)
			ctx.add(f)
			continue
		}
		from, to := sr.Sites[fi].Shape, sr.Sites[ti].Shape
		if !sr.HasEdge(from, to) {
			f := finding("staticlock", SevError)
			f.Function = fname(e.ToSite.Func)
			f.Block = int32(e.ToSite.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: replay acquired 0x%x (shape %s) while holding 0x%x (shape %s) but the static order graph has no such edge",
				e.To, to, e.From, from)
			ctx.add(f)
		}
	}

	// Soundness (c): every dynamic deadlock cycle's lock classes must be
	// covered by one static cycle candidate.
	confirmedCycle := map[string]bool{} // class-set keys with dynamic evidence
	for _, c := range order.Cycles {
		inCycle := map[uint64]bool{}
		for _, a := range c.Addrs {
			inCycle[a] = true
		}
		clsSet := map[int]bool{}
		broken := false
		for _, e := range order.Edges {
			if !inCycle[e.From] || !inCycle[e.To] {
				continue
			}
			for _, site := range []LockSite{e.FromSite, e.ToSite} {
				si, ok := sr.SiteAt(site.Func, site.Block, site.Instr)
				if !ok {
					broken = true
					continue
				}
				if ci, ok := sr.LockClassOf(sr.Sites[si].Shape); ok {
					clsSet[ci] = true
				} else {
					broken = true
				}
			}
		}
		classes := make([]int, 0, len(clsSet))
		for ci := range clsSet {
			classes = append(classes, ci)
		}
		sort.Ints(classes)
		if broken || !sr.CycleCovering(classes) {
			f := finding("staticlock", SevError)
			f.Addr = c.Addrs[0]
			f.Message = fmt.Sprintf("oracle soundness bug: dynamic lock-order cycle over %d lock(s) (classes %v) has no covering static cycle candidate", len(c.Addrs), classes)
			ctx.add(f)
			continue
		}
		confirmedCycle[intsKey(classes)] = true
	}

	// Divergent-region acquires: guaranteed serialization under SIMT, and the
	// livelock hazard when the critical section spins or self-loops.
	for i := range sr.Sites {
		s := &sr.Sites[i]
		if s.Release || !s.Divergent || s.Unreachable {
			continue
		}
		f := finding("staticlock", SevWarning)
		f.Function = s.FuncName
		f.Block = int32(s.Block)
		f.Message = fmt.Sprintf("lock %s acquired under divergent control at instr %d: the warp serializes here; livelock hazard if the critical section spins", s.Shape, s.Instr)
		f.Details = map[string]string{"shape": s.Shape}
		ctx.add(f)
	}

	// Precision direction: static candidates the replay never confirmed.
	gaps := 0
	precision := func(msg string) {
		gaps++
		if gaps > maxPrecisionReports {
			return
		}
		f := finding("staticlock", SevInfo)
		f.Message = msg
		ctx.add(f)
	}
	for ci := range sr.AccessClasses {
		ac := &sr.AccessClasses[ci]
		if ac.Candidate && !confirmedRace[ci] {
			precision(fmt.Sprintf("precision gap: static race candidate {%s} never raced in this replay", strings.Join(ac.Shapes, ", ")))
		}
	}
	for i := range sr.Cycles {
		c := &sr.Cycles[i]
		covered := false
		for key := range confirmedCycle {
			if key == intsKey(c.Classes) {
				covered = true
				break
			}
		}
		if !covered {
			precision(fmt.Sprintf("precision gap: static cycle candidate over {%s} never deadlocked in this replay", strings.Join(c.Shapes, ", ")))
		}
	}
	if gaps > maxPrecisionReports {
		f := finding("staticlock", SevInfo)
		f.Message = fmt.Sprintf("%d further precision gap(s) suppressed", gaps-maxPrecisionReports)
		ctx.add(f)
	}

	f := finding("staticlock", SevInfo)
	f.Message = fmt.Sprintf("static concurrency oracle: %d acquire(s) (%d divergent), %d lock class(es), %d order edge(s), %d cycle candidate(s), %d race candidate(s); %d racy addr(s) and %d cycle(s) dynamic, %d precision gap(s)",
		sr.Acquires, sr.DivergentAcquires, len(sr.LockClasses), len(sr.Edges), sr.CycleCandidates, sr.RaceCandidates, len(races), len(order.Cycles), gaps)
	ctx.add(f)
	return nil
}

// classShapes renders an access class's member shapes for messages.
func classShapes(sr *staticlock.Result, class int) string {
	if class < 0 || class >= len(sr.AccessClasses) {
		return "unclassified"
	}
	return strings.Join(sr.AccessClasses[class].Shapes, ", ")
}

// intsKey is a canonical map key for a sorted int set.
func intsKey(xs []int) string {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	return sb.String()
}
