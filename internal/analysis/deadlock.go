package analysis

import (
	"fmt"
	"sort"
	"strings"

	"threadfuser/internal/graph"
	"threadfuser/internal/trace"
)

// LockSite identifies one static lock-op instruction: function, block, and
// the instruction's index within its block — the coordinates the dynamic
// trace records (trace.LockOp.Instr) and the static oracle share.
type LockSite struct {
	Func  uint32
	Block uint32
	Instr uint16
}

func (s LockSite) less(o LockSite) bool {
	if s.Func != o.Func {
		return s.Func < o.Func
	}
	if s.Block != o.Block {
		return s.Block < o.Block
	}
	return s.Instr < o.Instr
}

// LockEdge is one lock-order graph edge with site attribution: some thread
// acquired lock word To at ToSite while holding From, which it had acquired
// (at depth one) at FromSite. Edges are deduplicated on all four
// coordinates; Threads lists every thread that produced this exact edge.
type LockEdge struct {
	From     uint64
	To       uint64
	FromSite LockSite
	ToSite   LockSite
	Threads  []int
}

// LockCycle is one strongly connected component of the address-level
// lock-order graph with at least two locks — a set of acquisition orders
// that could interleave into a deadlock under blocking mutexes.
type LockCycle struct {
	// Addrs lists the SCC's lock words, sorted ascending.
	Addrs []uint64
	// Path is a canonical certificate walk inside the SCC (implicitly
	// closed back to Path[0]): from the smallest lock word, repeatedly the
	// smallest unvisited in-SCC successor.
	Path []uint64
	// Threads lists the threads contributing edges along Path.
	Threads []int
}

// LockOrder is the dynamic lock-order graph of a trace: site-attributed
// edges plus the cycles certifying potential deadlocks. Both slices are
// deterministically ordered.
type LockOrder struct {
	Edges  []LockEdge
	Cycles []LockCycle
}

// DynamicLockOrder replays every thread's lock events and builds the
// lock-order graph: an edge a→b whenever some thread acquired b while
// holding a (recursive re-acquires deepen the hold, they add no edge).
// The static oracle's cross-check consumes the site-attributed edges; the
// deadlock pass formats the cycles.
func DynamicLockOrder(t *trace.Trace) *LockOrder {
	type edge struct{ from, to uint64 }
	type heldInfo struct {
		depth int
		site  LockSite // where the depth-1 acquire happened
	}
	type siteEdge struct {
		e        edge
		fromSite LockSite
		toSite   LockSite
	}
	edgeThreads := map[edge]map[int]bool{}
	siteThreads := map[siteEdge]map[int]bool{}
	nodes := map[uint64]bool{}
	for _, th := range t.Threads {
		held := map[uint64]heldInfo{}
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			for li := range r.Locks {
				l := &r.Locks[li]
				site := LockSite{Func: r.Func, Block: r.Block, Instr: l.Instr}
				if l.Release {
					if h := held[l.Addr]; h.depth > 1 {
						h.depth--
						held[l.Addr] = h
					} else {
						delete(held, l.Addr)
					}
					continue
				}
				if h, ok := held[l.Addr]; ok {
					h.depth++ // recursive; no new order edge
					held[l.Addr] = h
					continue
				}
				for other, h := range held {
					e := edge{other, l.Addr}
					if edgeThreads[e] == nil {
						edgeThreads[e] = map[int]bool{}
						nodes[other] = true
						nodes[l.Addr] = true
					}
					edgeThreads[e][th.TID] = true
					se := siteEdge{e, h.site, site}
					if siteThreads[se] == nil {
						siteThreads[se] = map[int]bool{}
					}
					siteThreads[se][th.TID] = true
				}
				held[l.Addr] = heldInfo{depth: 1, site: site}
			}
		}
	}

	lo := &LockOrder{}
	for se, ths := range siteThreads {
		lo.Edges = append(lo.Edges, LockEdge{
			From: se.e.from, To: se.e.to,
			FromSite: se.fromSite, ToSite: se.toSite,
			Threads: sortedInts(ths),
		})
	}
	sort.Slice(lo.Edges, func(i, j int) bool {
		a, b := &lo.Edges[i], &lo.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.FromSite != b.FromSite {
			return a.FromSite.less(b.FromSite)
		}
		return a.ToSite.less(b.ToSite)
	})
	if len(edgeThreads) == 0 {
		return lo
	}

	// Tarjan over the address-level graph; every SCC with ≥2 locks is a
	// cycle certificate.
	ids := make([]uint64, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	idx := make(map[uint64]int, len(ids))
	for i, n := range ids {
		idx[n] = i
	}
	succs := make([][]int, len(ids))
	for e := range edgeThreads {
		succs[idx[e.from]] = append(succs[idx[e.from]], idx[e.to])
	}
	for i := range succs {
		sort.Ints(succs[i])
	}

	for _, scc := range graph.SCCs(succs) {
		if len(scc) < 2 {
			continue
		}
		sort.Ints(scc)
		inSCC := make(map[int]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		// Canonical cycle path: from the smallest lock word, repeatedly step
		// to the smallest in-SCC successor not yet visited (closing back to
		// the start when no fresh node remains). Deterministic and readable;
		// it need not visit the whole SCC to certify the cycle.
		path := []int{scc[0]}
		visited := map[int]bool{scc[0]: true}
		for {
			cur := path[len(path)-1]
			next := -1
			for _, s := range succs[cur] {
				if inSCC[s] && !visited[s] {
					next = s
					break
				}
			}
			if next < 0 {
				break
			}
			visited[next] = true
			path = append(path, next)
		}
		c := LockCycle{Addrs: make([]uint64, 0, len(scc)), Path: make([]uint64, 0, len(path))}
		for _, v := range scc {
			c.Addrs = append(c.Addrs, ids[v])
		}
		threads := map[int]bool{}
		for i, v := range path {
			c.Path = append(c.Path, ids[v])
			to := path[0]
			if i+1 < len(path) {
				to = path[i+1]
			}
			for tid := range edgeThreads[edge{ids[v], ids[to]}] {
				threads[tid] = true
			}
		}
		c.Threads = sortedInts(threads)
		lo.Cycles = append(lo.Cycles, c)
	}
	return lo
}

// deadlockPass builds the program's lock-order graph — an edge a→b whenever
// some thread acquired lock b while holding lock a — and reports its cycles.
// The locks pass already flags two-lock inversions pairwise; this pass finds
// the general case (cycles of any length across any set of threads), the
// classic deadlock certificate the trace's non-blocking locks hide. It is
// the lock-order complement to the Eraser-style lockset race detector.
type deadlockPass struct{}

func (deadlockPass) ID() string { return "deadlock" }
func (deadlockPass) Desc() string {
	return "lock-order graph cycles: acquisition orders that could deadlock under blocking mutexes"
}

func (deadlockPass) Run(ctx *Context) error {
	lo := DynamicLockOrder(ctx.Trace)
	for _, c := range lo.Cycles {
		words := make([]string, 0, len(c.Path)+1)
		for _, a := range c.Path {
			words = append(words, fmt.Sprintf("0x%x", a))
		}
		words = append(words, words[0])

		f := finding("deadlock", SevWarning)
		f.Addr = c.Addrs[0]
		f.Threads = c.Threads
		f.Message = fmt.Sprintf("lock-order cycle over %d lock(s): %s (threads %s; would deadlock under blocking mutexes)",
			len(c.Addrs), strings.Join(words, " -> "), intsCSV(c.Threads))
		f.Details = map[string]string{"locks": fmt.Sprintf("%d", len(c.Addrs))}
		ctx.add(f)
	}
	return nil
}
