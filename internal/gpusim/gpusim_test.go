package gpusim

import (
	"testing"

	"threadfuser/internal/cpusim"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

func simulate(t *testing.T, name string, cfg Config) (*Result, *trace.Trace) {
	return simulateAt(t, name, cfg, workloads.Config{Seed: 1})
}

func simulateAt(t *testing.T, name string, cfg Config, wcfg workloads.Config) (*Result, *trace.Trace) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	kt, err := simtrace.Generate(inst.Prog, tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(kt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

func TestSimulatorRunsAllWorkloads(t *testing.T) {
	cfg := RTX3070()
	for _, w := range workloads.TableI() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, _ := simulate(t, w.Name, cfg)
			if res.Cycles == 0 || res.WarpInstrs == 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			if res.IPC <= 0 {
				t.Errorf("IPC = %v, want > 0", res.IPC)
			}
			// The whole device cannot sustain more lane-instructions per
			// cycle than lanes exist.
			maxIPC := float64(cfg.NumSMs * cfg.IssueWidth * 32)
			if res.IPC > maxIPC {
				t.Errorf("IPC %v exceeds device peak %v", res.IPC, maxIPC)
			}
		})
	}
}

func TestConvergentBeatsDivergentThroughput(t *testing.T) {
	cfg := RTX3070()
	conv, _ := simulate(t, "paropoly.nbody", cfg)
	div, _ := simulate(t, "other.pigz", cfg)
	convIPC := conv.IPC
	divIPC := div.IPC
	if convIPC < 2*divIPC {
		t.Errorf("nbody IPC %.2f should be well above pigz IPC %.2f", convIPC, divIPC)
	}
}

func TestSchedulersDiffer(t *testing.T) {
	gto := RTX3070()
	lrr := RTX3070()
	lrr.Scheduler = LRR
	a, _ := simulate(t, "rodinia.sc", gto)
	b, _ := simulate(t, "rodinia.sc", lrr)
	if a.Cycles == 0 || b.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	// Same work either way.
	if a.WarpInstrs != b.WarpInstrs {
		t.Errorf("schedulers executed different work: %d vs %d", a.WarpInstrs, b.WarpInstrs)
	}
}

func TestMemoryBoundWorkloadStressesDRAM(t *testing.T) {
	// At reduced scale both kernels' footprints are cache-resident, so the
	// distinguishing quantity is the coalesced transaction count: the
	// chunked kernel needs ~4x the transactions of the grid-stride one
	// (32 vs 8 per warp instruction at 8-byte lanes).
	cfg := RTX3070()
	un, _ := simulate(t, "uncoalesced", cfg)
	co, _ := simulate(t, "vectoradd", cfg)
	if un.MemTx < 3*co.MemTx {
		t.Errorf("uncoalesced issued %d transactions, want ~4x vectoradd's %d", un.MemTx, co.MemTx)
	}
	if un.WarpInstrs != co.WarpInstrs {
		t.Errorf("both kernels execute the same warp instructions: %d vs %d", un.WarpInstrs, co.WarpInstrs)
	}
}

// TestSpeedupShape pins the figure-6 shape at reduced scale: the convergent
// compute kernel must project a healthy speedup over the multicore CPU,
// and must beat pigz's projection by a wide margin.
func TestSpeedupShape(t *testing.T) {
	cfg := RTX3070()
	cpu := cpusim.Xeon20()

	speedup := func(name string) float64 {
		// Speedups need enough threads to occupy the device (the paper
		// runs 128..42K; two warps would leave 44 SMs idle).
		g, tr := simulateAt(t, name, cfg, workloads.Config{Seed: 1, Threads: 512})
		c, err := cpusim.Run(tr, cpu)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c.Cycles) / float64(g.Cycles)
	}
	nbody := speedup("paropoly.nbody")
	pigz := speedup("other.pigz")
	if nbody < 1 {
		t.Errorf("nbody speedup %.2f, want > 1 (it maps perfectly to SIMT)", nbody)
	}
	if nbody < 3*pigz {
		t.Errorf("nbody speedup %.2f should dwarf pigz's %.2f", nbody, pigz)
	}
}

func TestCPUSimSanity(t *testing.T) {
	_, tr := simulate(t, "vectoradd", RTX3070())
	cfg := cpusim.Xeon20()
	res, err := cpusim.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Fatalf("degenerate CPU result: %+v", res)
	}
	// Fewer cores must not be faster.
	cfg2 := cfg
	cfg2.Cores = 2
	res2, err := cpusim.Run(tr, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles < res.Cycles {
		t.Errorf("2-core CPU (%d cycles) beat 20-core (%d cycles)", res2.Cycles, res.Cycles)
	}
}

func TestScaleSweepAtHighOccupancy(t *testing.T) {
	// SM scaling only helps while the kernel has enough warps to keep the
	// extra SMs busy (at 8 warps, one latency-hiding SM already matches 8
	// thin ones — and splitting across 8 L1s loses broadcast reuse). At
	// 1024 threads (32 warps) a single issue-bound SM is the bottleneck
	// and an 8-SM machine must be much faster.
	w, err := workloads.ByName("paropoly.nbody")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	kt, err := simtrace.Generate(inst.Prog, tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(kt, ScaleSweep(RTX3070(), 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 1, 2, 4, 8 SMs
		t.Fatalf("points = %d, want 4", len(points))
	}
	for _, pt := range points {
		if pt.Result.Cycles == 0 || pt.Result.WarpInstrs != points[0].Result.WarpInstrs {
			t.Fatalf("%s: degenerate or inconsistent result %+v", pt.Label, pt.Result)
		}
	}
	first := points[0].Result.Cycles
	last := points[len(points)-1].Result.Cycles
	if float64(last) > 0.6*float64(first) {
		t.Errorf("8 SMs (%d cycles) not meaningfully faster than 1 SM (%d) at 32-warp occupancy",
			last, first)
	}
}

func TestEmptyAndDegenerateKernels(t *testing.T) {
	// An empty kernel completes in zero cycles without error.
	res, err := Run(&simtrace.KernelTrace{Program: "empty", WarpSize: 32}, RTX3070())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.WarpInstrs != 0 {
		t.Errorf("empty kernel: %+v", res)
	}
	// Invalid configs are rejected.
	if _, err := Run(&simtrace.KernelTrace{}, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := RTX3070()
	cfg.IssueWidth = 0
	if _, err := Run(&simtrace.KernelTrace{}, cfg); err == nil {
		t.Error("zero issue width accepted")
	}
}
