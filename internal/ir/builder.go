package ir

import "fmt"

// Builder assembles a Program. It is not safe for concurrent use.
//
// Usage:
//
//	pb := ir.NewBuilder("vectoradd")
//	f := pb.NewFunc("worker")
//	head, body, done := f.NewBlock("head"), f.NewBlock("body"), f.NewBlock("done")
//	head.Mov(ir.Rg(ir.R(0)), ir.Imm(0))
//	head.Jmp(body)
//	...
//	prog, err := pb.Build()
type Builder struct {
	name  string
	funcs []*FuncBuilder
	entry FuncID
	built bool
}

// NewBuilder starts a new program.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// NewFunc declares a function. The first function declared becomes the
// program entry unless SetEntry overrides it.
func (pb *Builder) NewFunc(name string) *FuncBuilder {
	fb := &FuncBuilder{
		pb:   pb,
		id:   FuncID(len(pb.funcs)),
		name: name,
	}
	pb.funcs = append(pb.funcs, fb)
	return fb
}

// SetEntry designates the per-thread entry function.
func (pb *Builder) SetEntry(f *FuncBuilder) { pb.entry = f.id }

// Build validates and freezes the program.
func (pb *Builder) Build() (*Program, error) {
	if pb.built {
		return nil, fmt.Errorf("ir: program %q already built", pb.name)
	}
	p := &Program{
		Name:   pb.name,
		Entry:  pb.entry,
		byName: make(map[string]*Function, len(pb.funcs)),
	}
	for _, fb := range pb.funcs {
		f := &Function{ID: fb.id, Name: fb.name, Blocks: fb.blocks}
		p.Funcs = append(p.Funcs, f)
		if _, dup := p.byName[f.Name]; dup {
			return nil, fmt.Errorf("ir: duplicate function name %q", f.Name)
		}
		p.byName[f.Name] = f
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	pb.built = true
	return p, nil
}

// MustBuild is Build, panicking on error. Workload constructors use it since
// their programs are static and validated by tests.
func (pb *Builder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder assembles one function's blocks.
type FuncBuilder struct {
	pb     *Builder
	id     FuncID
	name   string
	blocks []*Block
}

// ID returns the function's id, usable in OpCall before Build.
func (fb *FuncBuilder) ID() FuncID { return fb.id }

// Name returns the function name.
func (fb *FuncBuilder) Name() string { return fb.name }

// NewBlock appends an empty block; the first block is the function entry.
// The name is for diagnostics only.
func (fb *FuncBuilder) NewBlock(name string) *BlockBuilder {
	b := &Block{ID: BlockID(len(fb.blocks)), Name: name}
	fb.blocks = append(fb.blocks, b)
	return &BlockBuilder{fb: fb, b: b}
}

// BlockBuilder appends instructions to a block. Instruction methods return
// the builder for chaining; terminator methods end the block.
type BlockBuilder struct {
	fb   *FuncBuilder
	b    *Block
	done bool
}

// ID returns the block id, usable as a branch target before Build.
func (bb *BlockBuilder) ID() BlockID { return bb.b.ID }

func (bb *BlockBuilder) emit(in Instr) *BlockBuilder {
	if bb.done {
		panic(fmt.Sprintf("ir: append to terminated block %s.%s", bb.fb.name, bb.b.Name))
	}
	bb.b.Instrs = append(bb.b.Instrs, in)
	if in.Op.IsTerminator() {
		bb.done = true
	}
	return bb
}

// Op2 emits a generic two-operand instruction.
func (bb *BlockBuilder) Op2(op Opcode, dst, src Operand) *BlockBuilder {
	return bb.emit(Instr{Op: op, Dst: dst, Src: src})
}

// Nop emits n no-ops (to pad blocks to realistic lengths).
func (bb *BlockBuilder) Nop(n int) *BlockBuilder {
	for i := 0; i < n; i++ {
		bb.emit(Instr{Op: OpNop})
	}
	return bb
}

// Mov emits dst = src.
func (bb *BlockBuilder) Mov(dst, src Operand) *BlockBuilder { return bb.Op2(OpMov, dst, src) }

// Lea emits dst = &src (src must be a memory operand).
func (bb *BlockBuilder) Lea(dst Reg, src Operand) *BlockBuilder {
	return bb.Op2(OpLea, Rg(dst), src)
}

// Add emits dst += src.
func (bb *BlockBuilder) Add(dst, src Operand) *BlockBuilder { return bb.Op2(OpAdd, dst, src) }

// Sub emits dst -= src.
func (bb *BlockBuilder) Sub(dst, src Operand) *BlockBuilder { return bb.Op2(OpSub, dst, src) }

// Mul emits dst *= src.
func (bb *BlockBuilder) Mul(dst, src Operand) *BlockBuilder { return bb.Op2(OpMul, dst, src) }

// Div emits dst /= src.
func (bb *BlockBuilder) Div(dst, src Operand) *BlockBuilder { return bb.Op2(OpDiv, dst, src) }

// Rem emits dst %= src.
func (bb *BlockBuilder) Rem(dst, src Operand) *BlockBuilder { return bb.Op2(OpRem, dst, src) }

// And emits dst &= src.
func (bb *BlockBuilder) And(dst, src Operand) *BlockBuilder { return bb.Op2(OpAnd, dst, src) }

// Or emits dst |= src.
func (bb *BlockBuilder) Or(dst, src Operand) *BlockBuilder { return bb.Op2(OpOr, dst, src) }

// Xor emits dst ^= src.
func (bb *BlockBuilder) Xor(dst, src Operand) *BlockBuilder { return bb.Op2(OpXor, dst, src) }

// Shl emits dst <<= src.
func (bb *BlockBuilder) Shl(dst, src Operand) *BlockBuilder { return bb.Op2(OpShl, dst, src) }

// Shr emits dst >>= src (logical).
func (bb *BlockBuilder) Shr(dst, src Operand) *BlockBuilder { return bb.Op2(OpShr, dst, src) }

// Sar emits dst >>= src (arithmetic).
func (bb *BlockBuilder) Sar(dst, src Operand) *BlockBuilder { return bb.Op2(OpSar, dst, src) }

// Neg emits dst = -dst.
func (bb *BlockBuilder) Neg(dst Operand) *BlockBuilder { return bb.emit(Instr{Op: OpNeg, Dst: dst}) }

// Not emits dst = ^dst.
func (bb *BlockBuilder) Not(dst Operand) *BlockBuilder { return bb.emit(Instr{Op: OpNot, Dst: dst}) }

// Cmov emits a conditional move: dst = src when c holds over the flags.
func (bb *BlockBuilder) Cmov(c Cond, dst, src Operand) *BlockBuilder {
	return bb.emit(Instr{Op: OpCmov, Cond: c, Dst: dst, Src: src})
}

// Cmp emits a flag-setting compare of dst against src.
func (bb *BlockBuilder) Cmp(dst, src Operand) *BlockBuilder { return bb.Op2(OpCmp, dst, src) }

// Test emits a flag-setting and-test of dst against src.
func (bb *BlockBuilder) Test(dst, src Operand) *BlockBuilder { return bb.Op2(OpTest, dst, src) }

// FAdd emits dst += src over float64 bits.
func (bb *BlockBuilder) FAdd(dst, src Operand) *BlockBuilder { return bb.Op2(OpFAdd, dst, src) }

// FSub emits dst -= src over float64 bits.
func (bb *BlockBuilder) FSub(dst, src Operand) *BlockBuilder { return bb.Op2(OpFSub, dst, src) }

// FMul emits dst *= src over float64 bits.
func (bb *BlockBuilder) FMul(dst, src Operand) *BlockBuilder { return bb.Op2(OpFMul, dst, src) }

// FDiv emits dst /= src over float64 bits.
func (bb *BlockBuilder) FDiv(dst, src Operand) *BlockBuilder { return bb.Op2(OpFDiv, dst, src) }

// FSqrt emits dst = sqrt(dst).
func (bb *BlockBuilder) FSqrt(dst Operand) *BlockBuilder {
	return bb.emit(Instr{Op: OpFSqrt, Dst: dst})
}

// FAbs emits dst = |dst|.
func (bb *BlockBuilder) FAbs(dst Operand) *BlockBuilder { return bb.emit(Instr{Op: OpFAbs, Dst: dst}) }

// FCmp emits a flag-setting float compare.
func (bb *BlockBuilder) FCmp(dst, src Operand) *BlockBuilder { return bb.Op2(OpFCmp, dst, src) }

// CvtIF emits dst = float64(src).
func (bb *BlockBuilder) CvtIF(dst, src Operand) *BlockBuilder { return bb.Op2(OpCvtIF, dst, src) }

// CvtFI emits dst = int64(src).
func (bb *BlockBuilder) CvtFI(dst, src Operand) *BlockBuilder { return bb.Op2(OpCvtFI, dst, src) }

// Lock emits an acquire of the lock whose address is src's effective address
// (register value, immediate, or memory-operand address).
func (bb *BlockBuilder) Lock(src Operand) *BlockBuilder {
	return bb.emit(Instr{Op: OpLock, Src: src})
}

// Unlock emits a release of the lock addressed by src.
func (bb *BlockBuilder) Unlock(src Operand) *BlockBuilder {
	return bb.emit(Instr{Op: OpUnlock, Src: src})
}

// IO emits an untraced I/O region of n instructions (paper figure 8).
func (bb *BlockBuilder) IO(n int64) *BlockBuilder {
	return bb.emit(Instr{Op: OpIO, Src: Imm(n)})
}

// Spin emits an untraced lock-spinning region of n instructions.
func (bb *BlockBuilder) Spin(n int64) *BlockBuilder {
	return bb.emit(Instr{Op: OpSpin, Src: Imm(n)})
}

// Jmp terminates the block with an unconditional branch.
func (bb *BlockBuilder) Jmp(target *BlockBuilder) {
	bb.emit(Instr{Op: OpJmp, Target: target.ID()})
}

// Jcc terminates the block with a conditional branch on the current flags.
func (bb *BlockBuilder) Jcc(c Cond, taken, fall *BlockBuilder) {
	bb.emit(Instr{Op: OpJcc, Cond: c, Target: taken.ID(), Fall: fall.ID()})
}

// Switch terminates the block with a jump-table dispatch on src. Values
// outside [0, len(targets)) clamp to the last entry, which keeps synthetic
// jump tables total without a separate default edge.
func (bb *BlockBuilder) Switch(src Operand, targets ...*BlockBuilder) {
	ids := make([]BlockID, len(targets))
	for i, t := range targets {
		ids[i] = t.ID()
	}
	bb.emit(Instr{Op: OpSwitch, Src: src, Targets: ids})
}

// Call terminates the block with a direct call; execution resumes at cont.
func (bb *BlockBuilder) Call(callee *FuncBuilder, cont *BlockBuilder) {
	bb.emit(Instr{Op: OpCall, Callee: callee.ID(), Fall: cont.ID()})
}

// CallReg terminates the block with an indirect call through src (a FuncID
// value); execution resumes at cont.
func (bb *BlockBuilder) CallReg(src Operand, cont *BlockBuilder) {
	bb.emit(Instr{Op: OpCallR, Src: src, Fall: cont.ID()})
}

// Ret terminates the block with a return.
func (bb *BlockBuilder) Ret() {
	bb.emit(Instr{Op: OpRet})
}
