GO ?= go

.PHONY: build vet test test-race bench bench-decode bench-replay bench-guard check lint staticcheck tfcheck tfstatic staticlock staticmem serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages the parallel analyzer pipeline touches: the
# per-warp replay workers (including the fusion A/B equivalence suite in
# internal/simt and the streaming-ingest suite in internal/core), the session
# cache, the experiment cell pools, the sweep/pool plumbing they are built
# on, and the tfserve concurrency suite (admission shedding, singleflight
# dedup, tenant budgets, drain).
test-race:
	$(GO) test -race ./internal/simt/... ./internal/core/... ./internal/report/... ./internal/pool/... ./internal/gpusim/... ./internal/serve/...

# Static sanity: go vet plus the tflint engine over workloads that must stay
# clean. The trace passes must produce zero findings of any severity; the
# static oracle pass always emits an informational summary, so the full pass
# list is held to warning-and-above instead.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/tflint -severity info -passes sanitize,lockset,divergence,locks,deadlock -workload vectoradd,uncoalesced
	$(GO) run ./cmd/tflint -severity warning -workload vectoradd,uncoalesced

# staticcheck, when installed (CI installs its own copy; locally run
# `go install honnef.co/go/tools/cmd/staticcheck@latest`). Checks are
# configured in staticcheck.conf.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Verify the analyzer's invariant catalog: tfcheck over every built-in
# workload plus a batch of generated traces, and the Table-I golden-snapshot
# comparison (regenerate intentionally changed numbers with
# `go test ./internal/check -run TestGoldenTableI -update`).
tfcheck:
	$(GO) run ./cmd/tfcheck -all -gen 10 -q
	$(GO) test ./internal/check -run TestGoldenTableI -count=1

# Run the static SIMT oracle over the whole workload catalog (also the CI
# smoke step for cmd/tfstatic).
tfstatic:
	$(GO) run ./cmd/tfstatic -all -q

# Static concurrency oracle smoke: the lock/race projection over the whole
# catalog, plus the dynamic cross-check on the seeded-defect workloads (exits
# nonzero if any soundness-class finding survives).
staticlock:
	$(GO) run ./cmd/tfstatic -all -locks -q
	$(GO) run ./cmd/tfstatic -workload seededrace,leakedlock,seededcycle,seededspin -locks -races -verify

# Static memory oracle smoke: per-site stride classes and transaction bounds
# over the whole catalog, plus the dynamic replay cross-check on a coalesced
# and an uncoalesced workload (exits nonzero if any replay execution exceeds
# a static bound or contradicts a segment claim).
staticmem:
	$(GO) run ./cmd/tfstatic -all -mem -q
	$(GO) run ./cmd/tfstatic -workload vectoradd,uncoalesced -mem -verify

# End-to-end smoke of the analysis service: start a real tfserve, prove the
# -server CLIs round-trip byte-identical reports against local runs, check
# the dedup/cache headers over raw HTTP, and drain it with SIGTERM.
serve-smoke:
	scripts/serve_smoke.sh

# Run the key analyzer benchmarks (replay + trace decode) and record the
# perf trajectory in BENCH_analyzer.json: a JSON array with per-row ns/op,
# MB/s, allocs/op, the replay serial-vs-parallel speedup, and the v3
# parallel-decode speedup over the v1 serial baseline.
bench:
	scripts/bench.sh

# Just the trace-decode benchmarks (v1/v2/v3 serial, v3 parallel), without
# the make-check gate or the JSON artifact — a quick loop for codec work.
bench-decode:
	$(GO) test -run '^$$' -bench 'BenchmarkDecodeV(1Serial|2Serial|3Serial|3Parallel)$$' -benchmem -count=1 .

# Just the SIMT replay benchmarks (serial, parallel, allocs), without the
# make-check gate or the JSON artifact — a quick loop for replay hot-path
# work (pair with tfanalyze -cpuprofile for the flame graph).
bench-replay:
	$(GO) test -run '^$$' -bench 'BenchmarkReplay(Serial|Parallel|Allocs)$$' -benchmem -count=1 .

# Decode and replay benchmarks checked against the committed limits in
# scripts/bench_baseline.json: allocs/op ceilings (exact at any benchtime;
# catches losing the arena decoder's or fused replay's near-zero per-record
# allocation) and replay MB/s floors (regime check with >2x headroom;
# catches falling back to the pre-fusion per-record replay).
bench-guard:
	scripts/bench_guard.sh

check: build vet test test-race lint staticcheck tfcheck tfstatic staticlock staticmem serve-smoke
