package simt

import (
	"reflect"
	"testing"

	"threadfuser/internal/trace"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
)

// batchLoopProgram builds a loop whose trip count is per-thread (register
// r1): long convergent same-block runs when counts agree, loop-exit
// divergence when they differ. The body stores through a TID-indexed
// address so memory-coalescing metrics are exercised too, and the tail's
// untraced IO region exercises skip accounting around run boundaries.
func batchLoopProgram(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("batchloop")
	f := pb.NewFunc("worker")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	tail := f.NewBlock("tail")
	head.Nop(1).Jmp(body)
	body.Mov(ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8), ir.Rg(ir.R(1))).
		Sub(ir.Rg(ir.R(1)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(1)), ir.Imm(0)).
		Jcc(ir.CondGT, body, tail)
	tail.IO(5).Nop(2).Ret()
	return pb.MustBuild()
}

// TestBatchedReplayMatchesStepped pins run batching to the stepped replay
// across the interesting regimes: uniform long runs, divergent loop trip
// counts, and contended critical-section serialization.
func TestBatchedReplayMatchesStepped(t *testing.T) {
	const threads = 8
	cases := []struct {
		name  string
		build func(t *testing.T) (*vm.Process, func(int, *vm.Thread))
		opts  []Options
	}{
		{
			name: "uniform-runs",
			build: func(t *testing.T) (*vm.Process, func(int, *vm.Thread)) {
				p := vm.NewProcess(batchLoopProgram(t))
				table := p.AllocGlobal(8 * threads)
				return p, func(tid int, th *vm.Thread) {
					th.SetReg(ir.R(0), int64(table))
					th.SetReg(ir.R(1), 100) // same trip count: one long run
				}
			},
			opts: []Options{{WarpSize: threads}, {WarpSize: threads, EmulateLocks: true}},
		},
		{
			name: "divergent-trip-counts",
			build: func(t *testing.T) (*vm.Process, func(int, *vm.Thread)) {
				p := vm.NewProcess(batchLoopProgram(t))
				table := p.AllocGlobal(8 * threads)
				return p, func(tid int, th *vm.Thread) {
					th.SetReg(ir.R(0), int64(table))
					th.SetReg(ir.R(1), int64(tid%5+1))
				}
			},
			opts: []Options{{WarpSize: threads}, {WarpSize: 4}},
		},
		{
			name: "contended-locks",
			build: func(t *testing.T) (*vm.Process, func(int, *vm.Thread)) {
				p := vm.NewProcess(lockProgram(t, 6))
				return p, lockSetup(p, threads, 2)
			},
			opts: []Options{
				{WarpSize: threads, EmulateLocks: true},
				{WarpSize: threads, EmulateLocks: true, LockReconvergence: ReconvergeAtFunctionExit},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, args := tc.build(t)
			tr, err := vm.TraceAll(p, threads, vm.RunConfig{}, args)
			if err != nil {
				t.Fatal(err)
			}
			graphs, err := cfg.Build(tr)
			if err != nil {
				t.Fatal(err)
			}
			pdoms := ipdom.ComputeAll(graphs)
			for _, opts := range tc.opts {
				warps, err := warp.Form(tr, opts.WarpSize, warp.RoundRobin)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := Replay(tr, graphs, pdoms, warps, opts)
				if err != nil {
					t.Fatal(err)
				}
				stepped := opts
				stepped.disableRunBatch = true
				want, err := Replay(tr, graphs, pdoms, warps, stepped)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batched, want) {
					t.Errorf("%+v: batched and stepped replays diverge\nbatched total: %+v\nstepped total: %+v",
						opts, batched.Total(), want.Total())
				}
			}
		})
	}
}

// benchReplayInput builds a long uniform-loop trace: the best case for run
// batching (one long same-block run per warp) and the A/B baseline for
// whether batching pays for its run detection.
func benchReplayInput(b *testing.B) (tr *trace.Trace, graphs map[uint32]*cfg.DCFG, pdoms map[uint32]*ipdom.PostDom, warps []warp.Warp) {
	b.Helper()
	pb := ir.NewBuilder("batchbench")
	f := pb.NewFunc("worker")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	tail := f.NewBlock("tail")
	head.Nop(1).Jmp(body)
	body.Mov(ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8), ir.Rg(ir.R(1))).
		Sub(ir.Rg(ir.R(1)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(1)), ir.Imm(0)).
		Jcc(ir.CondGT, body, tail)
	tail.Ret()
	prog, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	const threads = 32
	p := vm.NewProcess(prog)
	table := p.AllocGlobal(8 * threads)
	tr, err = vm.TraceAll(p, threads, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(table))
		th.SetReg(ir.R(1), 2000)
	})
	if err != nil {
		b.Fatal(err)
	}
	graphs, err = cfg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	pdoms = ipdom.ComputeAll(graphs)
	warps, err = warp.Form(tr, 8, warp.RoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	return tr, graphs, pdoms, warps
}

func BenchmarkReplayBatched(b *testing.B) {
	tr, graphs, pdoms, warps := benchReplayInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayStepped(b *testing.B) {
	tr, graphs, pdoms, warps := benchReplayInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{WarpSize: 8}
		opts.disableRunBatch = true
		if _, err := Replay(tr, graphs, pdoms, warps, opts); err != nil {
			b.Fatal(err)
		}
	}
}
