// Package gpusim is a trace-driven SIMT timing simulator, the reproduction's
// stand-in for Accel-Sim (paper sections III and V-A). It consumes the
// warp-based micro-op traces internal/simtrace generates and models the
// cycle-level factors the paper's speedup projections depend on: warp
// scheduling (GTO or loose round-robin), scoreboarded register dependences,
// per-class execution latencies, memory coalescing into 32-byte
// transactions, sectored L1 and shared L2 caches, MSHR-limited outstanding
// misses, and a bandwidth/latency DRAM model.
//
// Absolute cycle counts are not calibrated against real silicon; the model
// exists to preserve the *shape* of figure 6 — which workloads speed up,
// by roughly what factor, and where memory divergence or control divergence
// caps them.
package gpusim

import (
	"fmt"

	"threadfuser/internal/coalesce"
	"threadfuser/internal/ir"
	"threadfuser/internal/simtrace"
)

// Scheduler selects the warp-scheduling policy.
type Scheduler uint8

const (
	// GTO is greedy-then-oldest: keep issuing from the current warp until
	// it stalls, then fall back to the oldest ready warp.
	GTO Scheduler = iota
	// LRR is loose round-robin.
	LRR
)

func (s Scheduler) String() string {
	if s == LRR {
		return "lrr"
	}
	return "gto"
}

// Config describes the simulated SIMT machine.
type Config struct {
	Name       string
	NumSMs     int
	WarpsPerSM int // resident-warp slots per SM (occupancy limit)
	IssueWidth int // instructions issued per SM per cycle
	Scheduler  Scheduler

	// Execution latencies per micro-op class (cycles).
	LatALU  uint64
	LatFPU  uint64
	LatSFU  uint64
	LatCtrl uint64
	LatSync uint64

	L1         CacheConfig
	L2         CacheConfig
	MSHRsPerSM int

	DRAMLatency      uint64
	DRAMBytesPerClk  float64
	MaxCycles        uint64
	localInterleaved bool
}

// RTX3070 approximates the configuration the paper runs Accel-Sim with
// ("configured with Nvidia RTX 3070 settings"): 46 SMs, 32-wide warps,
// 128KB-class L1s, a 4MB L2 and ~14 bytes/cycle of DRAM bandwidth per the
// whole device at simulator clock.
func RTX3070() Config {
	return Config{
		Name:             "rtx3070",
		NumSMs:           46,
		WarpsPerSM:       32,
		IssueWidth:       2,
		Scheduler:        GTO,
		LatALU:           4,
		LatFPU:           4,
		LatSFU:           16,
		LatCtrl:          4,
		LatSync:          20,
		L1:               CacheConfig{Sets: 64, Ways: 8, Latency: 28},
		L2:               CacheConfig{Sets: 1024, Ways: 16, Latency: 120},
		MSHRsPerSM:       32,
		DRAMLatency:      220,
		DRAMBytesPerClk:  32,
		MaxCycles:        2_000_000_000,
		localInterleaved: true,
	}
}

// SmallSIMT is a CPU-adjacent SIMT design (hundreds of threads, the
// architects' design point the paper motivates via SIMR/Simty/SIMT-X):
// fewer, fatter cores with larger caches per lane.
func SmallSIMT() Config {
	c := RTX3070()
	c.Name = "small-simt"
	c.NumSMs = 8
	c.WarpsPerSM = 8
	c.L1 = CacheConfig{Sets: 128, Ways: 8, Latency: 12}
	c.L2 = CacheConfig{Sets: 2048, Ways: 16, Latency: 60}
	c.DRAMBytesPerClk = 16
	return c
}

// Result summarizes a simulation.
type Result struct {
	Config     string
	Cycles     uint64
	WarpInstrs uint64
	LaneInstrs uint64
	// IPC is lane-instructions per cycle across the whole device.
	IPC float64

	L1HitRate  float64
	L2HitRate  float64
	DRAMBytes  uint64
	MemTx      uint64 // 32-byte transactions issued after coalescing
	MemStalls  uint64 // issue attempts blocked by MSHR pressure
	DataStalls uint64 // issue attempts blocked by the scoreboard
}

// dram is a shared bandwidth/latency pipe.
type dram struct {
	latency  uint64
	bytesClk float64
	nextFree float64
	Bytes    uint64
}

// access returns the completion cycle of a transaction issued at now.
func (d *dram) access(now uint64, nbytes uint64) uint64 {
	start := float64(now)
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + float64(nbytes)/d.bytesClk
	d.Bytes += nbytes
	return uint64(start) + d.latency
}

// warpCtx is the execution state of one resident warp.
type warpCtx struct {
	stream   *simtrace.WarpStream
	pc       int
	regReady [simtrace.NumTraceRegs]uint64
}

func (w *warpCtx) finished() bool { return w.pc >= len(w.stream.Instrs) }

// mshrRelease frees outstanding-miss slots when transactions complete.
type mshrRelease struct {
	at uint64
	n  int
}

// sm is one streaming multiprocessor.
type sm struct {
	resident    []*warpCtx
	pending     []*simtrace.WarpStream
	l1          *cache
	outstanding int
	releases    []mshrRelease
	greedy      int
}

// Run simulates a kernel trace on the configured machine.
func Run(kt *simtrace.KernelTrace, cfg Config) (*Result, error) {
	if cfg.NumSMs <= 0 || cfg.WarpsPerSM <= 0 || cfg.IssueWidth <= 0 {
		return nil, fmt.Errorf("gpusim: invalid config %+v", cfg)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	sms := make([]*sm, cfg.NumSMs)
	for i := range sms {
		sms[i] = &sm{l1: newCache(cfg.L1)}
	}
	for i, ws := range kt.Warps {
		sms[i%cfg.NumSMs].pending = append(sms[i%cfg.NumSMs].pending, ws)
	}
	for _, m := range sms {
		m.admit(cfg.WarpsPerSM)
	}

	l2 := newCache(cfg.L2)
	mem := &dram{latency: cfg.DRAMLatency, bytesClk: cfg.DRAMBytesPerClk}
	res := &Result{Config: cfg.Name}

	cycle := uint64(0)
	for {
		busy := false
		for _, m := range sms {
			if m.step(cycle, cfg, l2, mem, res) {
				busy = true
			}
		}
		if !busy {
			break
		}
		cycle++
		if cycle > cfg.MaxCycles {
			return nil, fmt.Errorf("gpusim: exceeded %d cycles", cfg.MaxCycles)
		}
	}

	res.Cycles = cycle
	if cycle > 0 {
		res.IPC = float64(res.LaneInstrs) / float64(cycle)
	}
	res.L1HitRate = aggregateL1(sms)
	res.L2HitRate = l2.HitRate()
	res.DRAMBytes = mem.Bytes
	return res, nil
}

func aggregateL1(sms []*sm) float64 {
	var h, m uint64
	for _, s := range sms {
		h += s.l1.Hits
		m += s.l1.Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// admit moves pending warps into free resident slots.
func (m *sm) admit(slots int) {
	for len(m.resident) < slots && len(m.pending) > 0 {
		m.resident = append(m.resident, &warpCtx{stream: m.pending[0]})
		m.pending = m.pending[1:]
	}
}

// step advances one SM by one cycle; it reports whether the SM still has
// work (resident or pending warps).
func (m *sm) step(cycle uint64, cfg Config, l2 *cache, mem *dram, res *Result) bool {
	// Retire completed warps and free MSHRs.
	for i := 0; i < len(m.resident); {
		if m.resident[i].finished() {
			m.resident = append(m.resident[:i], m.resident[i+1:]...)
		} else {
			i++
		}
	}
	m.admit(cfg.WarpsPerSM)
	for i := 0; i < len(m.releases); {
		if m.releases[i].at <= cycle {
			m.outstanding -= m.releases[i].n
			m.releases = append(m.releases[:i], m.releases[i+1:]...)
		} else {
			i++
		}
	}
	if len(m.resident) == 0 {
		return len(m.pending) > 0
	}

	issued := 0
	n := len(m.resident)
	if m.greedy >= n {
		m.greedy = 0
	}
	// Candidate order: GTO tries the greedy warp first and then the oldest
	// (lowest slot); LRR rotates fairly from the last issuer.
	order := make([]int, 0, n)
	if cfg.Scheduler == GTO {
		order = append(order, m.greedy)
		for i := 0; i < n; i++ {
			if i != m.greedy {
				order = append(order, i)
			}
		}
	} else {
		for i := 1; i <= n; i++ {
			order = append(order, (m.greedy+i)%n)
		}
	}
	for _, idx := range order {
		if issued >= cfg.IssueWidth {
			break
		}
		w := m.resident[idx]
		if w.finished() {
			continue
		}
		if m.tryIssue(w, cycle, cfg, l2, mem, res) {
			issued++
			m.greedy = idx
		}
	}
	return true
}

// tryIssue attempts to issue the warp's next micro-op at the given cycle.
func (m *sm) tryIssue(w *warpCtx, cycle uint64, cfg Config, l2 *cache, mem *dram, res *Result) bool {
	in := &w.stream.Instrs[w.pc]
	for _, s := range in.Srcs {
		if s != simtrace.NoReg && w.regReady[s] > cycle {
			res.DataStalls++
			return false
		}
	}
	if in.Dst != simtrace.NoReg && w.regReady[in.Dst] > cycle {
		res.DataStalls++ // WAW on an in-flight load
		return false
	}

	var done uint64
	switch in.Class {
	case ir.ClassMem:
		txs := transactions(in, cfg)
		if m.outstanding+txs > cfg.MSHRsPerSM {
			res.MemStalls++
			return false
		}
		done = m.serviceMem(in, txs, cycle, cfg, l2, mem)
		res.MemTx += uint64(txs)
		if txs > 0 {
			m.outstanding += txs
			m.releases = append(m.releases, mshrRelease{at: done, n: txs})
		}
	case ir.ClassFPU:
		done = cycle + cfg.LatFPU
	case ir.ClassSFU:
		done = cycle + cfg.LatSFU
	case ir.ClassCtrl:
		done = cycle + cfg.LatCtrl
	case ir.ClassSync:
		done = cycle + cfg.LatSync
	default:
		done = cycle + cfg.LatALU
	}
	if in.Dst != simtrace.NoReg {
		if in.Class == ir.ClassMem && !in.Load {
			// Stores retire without blocking dependents.
		} else {
			w.regReady[in.Dst] = done
		}
	}
	w.pc++
	res.WarpInstrs++
	res.LaneInstrs += uint64(in.ActiveLanes())
	return true
}

// transactions counts the 32-byte transactions the micro-op needs.
func transactions(in *simtrace.WInstr, cfg Config) int {
	if len(in.Addrs) == 0 {
		return 0
	}
	if in.Space == simtrace.SpaceLocal && cfg.localInterleaved {
		// Local memory is lane-interleaved on real GPUs: same-variable
		// accesses across the warp are perfectly coalesced.
		total := len(in.Addrs) * int(in.Size)
		return (total + lineSize - 1) / lineSize
	}
	accs := make([]coalesce.Access, len(in.Addrs))
	for i, a := range in.Addrs {
		accs[i] = coalesce.Access{Addr: a, Size: in.Size}
	}
	return coalesce.Count(accs)
}

// serviceMem walks each transaction through L1, L2 and DRAM, returning the
// completion cycle of the slowest one.
func (m *sm) serviceMem(in *simtrace.WInstr, txs int, cycle uint64, cfg Config, l2 *cache, mem *dram) uint64 {
	if txs == 0 {
		return cycle + cfg.LatALU
	}
	worst := uint64(0)
	for t := 0; t < txs; t++ {
		addr := txAddr(in, t)
		var done uint64
		switch {
		case m.l1.access(addr):
			done = cycle + cfg.L1.Latency
		case l2.access(addr):
			done = cycle + cfg.L1.Latency + cfg.L2.Latency
		default:
			done = mem.access(cycle+cfg.L1.Latency+cfg.L2.Latency, lineSize)
		}
		if done > worst {
			worst = done
		}
	}
	return worst
}

// txAddr picks a representative address for transaction t: the t-th
// distinct 32-byte sector touched by the access list.
func txAddr(in *simtrace.WInstr, t int) uint64 {
	if in.Space == simtrace.SpaceLocal {
		// Interleaved local memory: sectors are consecutive.
		return in.Addrs[0] + uint64(t*lineSize)
	}
	seen := 0
	var sectors []uint64
	for _, a := range in.Addrs {
		s := a / lineSize
		dup := false
		for _, x := range sectors {
			if x == s {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sectors = append(sectors, s)
		if seen == t {
			return s * lineSize
		}
		seen++
	}
	return in.Addrs[len(in.Addrs)-1] &^ (lineSize - 1)
}
