#!/bin/sh
# bench_guard: run the decode benchmarks once (-benchtime=1x) and fail loudly
# if any row's allocs/op regresses above the committed ceilings in
# scripts/bench_baseline.json. A single iteration says nothing about MB/s —
# both are printed for the log/artifact — but allocs/op is exact at any
# benchtime, which is what makes it guardable in CI: the arena decoder does a
# fixed handful of allocations per decode, and an accidental return to
# per-record allocation shows up as a 100x jump no amount of runner noise can
# hide.
#
# Environment:
#   BENCHTIME  forwarded to -benchtime (default 1x)
set -e
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.json

raw=$(go test -run '^$' \
	-bench 'BenchmarkDecodeV(1Serial|2Serial|3Serial|3Parallel)$' \
	-benchmem -benchtime "${BENCHTIME:-1x}" -count=1 .)
echo "$raw"

printf '%s\n' "$raw" | awk -v baseline="$baseline" '
BEGIN {
	while ((getline line < baseline) > 0) {
		if (match(line, /"decode_[a-z0-9_]+"/)) {
			name = substr(line, RSTART + 1, RLENGTH - 2)
			if (match(line, /"max_allocs_per_op": [0-9]+/))
				ceil[name] = substr(line, RSTART + 21, RLENGTH - 21)
		}
	}
	close(baseline)
	if (length(ceil) == 0) {
		print "bench_guard: no ceilings parsed from " baseline > "/dev/stderr"
		exit 1
	}
}
/^BenchmarkDecode/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	# DecodeV3Serial -> decode_v3_serial (same keying as bench.sh rows)
	key = ""
	for (j = 1; j <= length(name); j++) {
		ch = substr(name, j, 1)
		if (ch >= "A" && ch <= "Z") {
			if (key != "") key = key "_"
			key = key tolower(ch)
		} else key = key ch
	}
	gsub(/v_([0-9])/, "v\\1", key)
	mbs = "n/a"; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "MB/s") mbs = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (allocs == "") {
		print "bench_guard: no allocs/op in row " $1 " (need -benchmem)" > "/dev/stderr"
		exit 1
	}
	seen[key] = 1
	status = "ok"
	if (!(key in ceil)) {
		status = "NO BASELINE"
		bad = bad " " key
	} else if (allocs + 0 > ceil[key] + 0) {
		status = sprintf("REGRESSION (ceiling %d)", ceil[key])
		bad = bad " " key
	}
	printf "bench_guard: %-20s %8s allocs/op  %10s MB/s  %s\n", key, allocs, mbs, status
}
END {
	for (k in ceil)
		if (!(k in seen)) {
			print "bench_guard: baseline row " k " missing from bench output" > "/dev/stderr"
			exit 1
		}
	if (bad != "") {
		print "bench_guard: decode allocs/op above committed baseline:" bad > "/dev/stderr"
		exit 1
	}
	print "bench_guard: all decode rows within committed allocs/op ceilings"
}'
