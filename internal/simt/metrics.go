package simt

// FuncMetrics accumulates per-function SIMT statistics. A block's
// instructions are attributed to the function that owns the block, so a
// function's numbers exclude its callees — the property the paper relies on
// for the per-function bottleneck reports (figure 7).
type FuncMetrics struct {
	// Lockstep counts warp instructions issued for the function's blocks.
	Lockstep uint64
	// ThreadInstrs counts instructions summed over the active threads.
	ThreadInstrs uint64
	// Invocations counts warp-level entries into the function.
	Invocations uint64
	// MemInstrs / HeapTx / StackTx attribute the memory-divergence metrics
	// (figure 10) to the function's own instructions.
	MemInstrs uint64
	HeapTx    uint64
	StackTx   uint64
	// LockSerializations / SerializedLanes attribute intra-warp
	// critical-section serialization events (figure 9, EmulateLocks only)
	// to the function whose block performed the contended acquire. The
	// lock-serialization lint uses this to name the function a coarse lock
	// is throttling.
	LockSerializations uint64
	SerializedLanes    uint64
}

// HeapTxPerMemInstr returns the function's heap transactions per memory
// instruction.
func (f *FuncMetrics) HeapTxPerMemInstr() float64 {
	if f.MemInstrs == 0 {
		return 0
	}
	return float64(f.HeapTx) / float64(f.MemInstrs)
}

// Efficiency returns the function's SIMT efficiency given the warp size
// (equation 1 of the paper, restricted to the function's own blocks).
func (f *FuncMetrics) Efficiency(warpSize int) float64 {
	if f.Lockstep == 0 {
		return 0
	}
	return float64(f.ThreadInstrs) / (float64(f.Lockstep) * float64(warpSize))
}

// WarpMetrics accumulates statistics for one warp.
type WarpMetrics struct {
	// Lockstep is the number of warp instructions issued (each basic-block
	// instruction counted once per lockstep execution, regardless of how
	// many lanes are active).
	Lockstep uint64
	// ThreadInstrs is the number of instructions summed over active lanes.
	ThreadInstrs uint64

	// MemInstrs counts warp-level executions of x86 instructions that
	// initiated at least one memory access on an active lane.
	MemInstrs uint64
	// StackMemInstrs / HeapMemInstrs count warp memory instructions that
	// touched the respective segment (an instruction may count in both).
	StackMemInstrs uint64
	HeapMemInstrs  uint64
	// StackTx / HeapTx count 32-byte transactions after coalescing.
	StackTx uint64
	HeapTx  uint64

	// LockSerializations counts critical-section serialization events
	// (occasions where ≥2 lanes contended for the same lock address).
	LockSerializations uint64
	// SerializedLanes counts the lanes that were forced to execute
	// serially across all serialization events.
	SerializedLanes uint64

	// LaneHistogram[k] counts warp instructions issued with exactly k
	// active lanes — the occupancy distribution behind the efficiency
	// number. A bimodal histogram (full warps plus single-lane tails) and
	// a uniformly half-full one have the same equation-1 efficiency but
	// very different hardware remedies.
	LaneHistogram [MaxWarpSize + 1]uint64
}

// Efficiency returns the warp's SIMT efficiency per equation 1.
func (w *WarpMetrics) Efficiency(warpSize int) float64 {
	if w.Lockstep == 0 {
		return 0
	}
	return float64(w.ThreadInstrs) / (float64(w.Lockstep) * float64(warpSize))
}

// MemSiteKey identifies one static memory instruction: the function and
// block that own it plus the instruction index within the block — the same
// coordinates the static memory oracle (internal/staticmem) classifies, so
// predicted and observed coalescing line up site by site.
type MemSiteKey struct {
	Func  uint32
	Block uint32
	Instr uint16
}

// MemSiteStats accumulates the observed coalescing behaviour of one memory
// instruction across all of its warp-level executions: per-segment
// transaction totals, the worst single execution, and a histogram of
// transactions-per-execution. Every field is a commutative sum or max, so
// worker-local stats merge to bit-identical totals regardless of how warps
// were partitioned.
type MemSiteStats struct {
	// Execs counts warp-level executions where an active lane accessed
	// memory through this instruction.
	Execs uint64
	// StackTx / HeapTx total the 32-byte transactions by segment (heap
	// includes global, matching coalesce.Split's partition).
	StackTx uint64
	HeapTx  uint64
	// MaxStackTx / MaxHeapTx / MaxTx record the worst single execution —
	// what the static per-site transaction bound must dominate.
	MaxStackTx uint64
	MaxHeapTx  uint64
	MaxTx      uint64
	// Hist buckets executions by total transaction count:
	// 1, 2, 3, 4, 5-8, 9-16, 17-32, 33+.
	Hist [8]uint64
}

// note records one warp-level execution's per-segment transaction counts.
func (m *MemSiteStats) note(stackTx, heapTx int) {
	m.Execs++
	s, h := uint64(stackTx), uint64(heapTx)
	m.StackTx += s
	m.HeapTx += h
	if s > m.MaxStackTx {
		m.MaxStackTx = s
	}
	if h > m.MaxHeapTx {
		m.MaxHeapTx = h
	}
	t := s + h
	if t > m.MaxTx {
		m.MaxTx = t
	}
	if t == 0 {
		// Zero-size accesses (possible only in hand-edited traces) span no
		// sector; there is no bucket for them.
		return
	}
	m.Hist[histBucket(t)]++
}

func histBucket(t uint64) int {
	switch {
	case t <= 4:
		return int(t - 1)
	case t <= 8:
		return 4
	case t <= 16:
		return 5
	case t <= 32:
		return 6
	default:
		return 7
	}
}

// merge folds other into m. All fields are sums or maxes, so merging is
// commutative and associative.
func (m *MemSiteStats) merge(o *MemSiteStats) {
	m.Execs += o.Execs
	m.StackTx += o.StackTx
	m.HeapTx += o.HeapTx
	if o.MaxStackTx > m.MaxStackTx {
		m.MaxStackTx = o.MaxStackTx
	}
	if o.MaxHeapTx > m.MaxHeapTx {
		m.MaxHeapTx = o.MaxHeapTx
	}
	if o.MaxTx > m.MaxTx {
		m.MaxTx = o.MaxTx
	}
	for i := range m.Hist {
		m.Hist[i] += o.Hist[i]
	}
}

// BranchKey identifies a divergence site: the basic block whose terminator
// split the warp.
type BranchKey struct {
	Func  uint32
	Block uint32
}

// BranchStats accumulates divergence behaviour at one branch site. The
// per-function report (figure 7) localizes SIMT inefficiency to a function;
// this localizes it to the exact branch, the granularity a developer needs
// to apply a fix like the paper's getpoint trip-count pinning.
type BranchStats struct {
	// Divergences counts warp splits caused by this block's terminator.
	Divergences uint64
	// Paths sums the number of distinct targets per split (≥2).
	Paths uint64
	// LanesOff sums, over all splits, the lanes that left the largest
	// group — an estimate of the lanes idled by each divergence.
	LanesOff uint64
	// RegionLockstep / RegionThreadInstrs total the warp instructions
	// issued while the warp was split by this branch (between the split and
	// its reconvergence point) and the thread instructions those issues
	// retired on active lanes. Their gap is the issue bandwidth the
	// divergent region wastes — the quantity the divergence lint ranks
	// regions by. Nested splits attribute to the innermost branch.
	RegionLockstep     uint64
	RegionThreadInstrs uint64
}

// LostSlots returns the issue slots the branch's divergent regions left idle:
// warpSize lanes per issued instruction, minus the lanes that were active.
func (b *BranchStats) LostSlots(warpSize int) uint64 {
	full := b.RegionLockstep * uint64(warpSize)
	if full < b.RegionThreadInstrs {
		return 0
	}
	return full - b.RegionThreadInstrs
}

// Result is the outcome of replaying all warps of a trace.
type Result struct {
	WarpSize int
	Warps    []WarpMetrics
	Funcs    map[uint32]*FuncMetrics
	// Branches maps divergence sites to their statistics.
	Branches map[BranchKey]*BranchStats
	// MemSites maps every executed memory instruction to its observed
	// per-site coalescing histogram — the dynamic twin of the static memory
	// oracle's per-site classification.
	MemSites map[MemSiteKey]*MemSiteStats

	// SkippedIO / SkippedSpin total the untraced instructions consumed
	// during replay (paper figure 8).
	SkippedIO   uint64
	SkippedSpin uint64
}

// Total returns the aggregate of all warp metrics.
func (r *Result) Total() WarpMetrics {
	var t WarpMetrics
	for i := range r.Warps {
		w := &r.Warps[i]
		t.Lockstep += w.Lockstep
		t.ThreadInstrs += w.ThreadInstrs
		t.MemInstrs += w.MemInstrs
		t.StackMemInstrs += w.StackMemInstrs
		t.HeapMemInstrs += w.HeapMemInstrs
		t.StackTx += w.StackTx
		t.HeapTx += w.HeapTx
		t.LockSerializations += w.LockSerializations
		t.SerializedLanes += w.SerializedLanes
		for k, v := range w.LaneHistogram {
			t.LaneHistogram[k] += v
		}
	}
	return t
}

// Efficiency returns the program's SIMT efficiency: the average of the
// per-warp efficiencies, as the paper specifies ("the overall SIMT
// efficiency for the program is then computed by averaging these
// efficiencies across all warps").
func (r *Result) Efficiency() float64 {
	if len(r.Warps) == 0 {
		return 0
	}
	sum := 0.0
	for i := range r.Warps {
		sum += r.Warps[i].Efficiency(r.WarpSize)
	}
	return sum / float64(len(r.Warps))
}

// WeightedEfficiency returns the instruction-weighted program efficiency
// (total thread instructions over total issue slots), which large warps with
// long traces dominate. Reported alongside the per-warp average.
func (r *Result) WeightedEfficiency() float64 {
	t := r.Total()
	return t.Efficiency(r.WarpSize)
}

// HeapTxPerMemInstr returns the average number of 32-byte heap transactions
// per warp memory instruction touching the heap (paper figures 5b and 10).
func (r *Result) HeapTxPerMemInstr() float64 {
	t := r.Total()
	if t.HeapMemInstrs == 0 {
		return 0
	}
	return float64(t.HeapTx) / float64(t.HeapMemInstrs)
}

// StackTxPerMemInstr returns the average number of 32-byte stack
// transactions per warp memory instruction touching the stack.
func (r *Result) StackTxPerMemInstr() float64 {
	t := r.Total()
	if t.StackMemInstrs == 0 {
		return 0
	}
	return float64(t.StackTx) / float64(t.StackMemInstrs)
}

// TracedFraction returns traced/(traced+skipped) dynamic instructions, the
// quantity figure 8 of the paper reports per workload.
func (r *Result) TracedFraction() float64 {
	traced := r.Total().ThreadInstrs
	all := traced + r.SkippedIO + r.SkippedSpin
	if all == 0 {
		return 1
	}
	return float64(traced) / float64(all)
}
