package vm

import "fmt"

// Address-space layout. The tracer classifies every access into a segment;
// the analyzer's coalescing model (paper figure 10) reports stack and heap
// transactions separately, and the warp-trace generator maps stack accesses
// to local memory and everything else to global memory (paper section III).
const (
	// GlobalBase is the start of the global/static data segment, where
	// workload Setup functions place shared inputs.
	GlobalBase uint64 = 0x10_0000_0000
	// HeapBase is the start of the shared heap served by the allocator.
	HeapBase uint64 = 0x40_0000_0000
	// StackBase is the start of the per-thread stack area.
	StackBase uint64 = 0x70_0000_0000
	// StackSize is the size of each thread's private stack segment.
	StackSize uint64 = 1 << 20
)

// Segment classifies an address.
type Segment uint8

const (
	SegGlobal Segment = iota
	SegHeap
	SegStack
)

func (s Segment) String() string {
	switch s {
	case SegGlobal:
		return "global"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return fmt.Sprintf("segment(%d)", uint8(s))
}

// SegmentOf returns the segment containing addr. Addresses below HeapBase
// are global, addresses in [HeapBase, StackBase) are heap, and everything
// at or above StackBase is thread stack.
func SegmentOf(addr uint64) Segment {
	switch {
	case addr >= StackBase:
		return SegStack
	case addr >= HeapBase:
		return SegHeap
	default:
		return SegGlobal
	}
}

// StackTop returns the initial stack pointer for a thread: the exclusive
// top of its private stack segment (stacks grow downward).
func StackTop(tid int) uint64 {
	return StackBase + uint64(tid+1)*StackSize
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, paged byte-addressable address space shared by all
// threads of a Process. Unwritten memory reads as zero. It is not safe for
// concurrent use; the tracer runs threads sequentially (locks never block
// during tracing, matching the paper's fine-grain-locking assumption).
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Read returns the size-byte little-endian value at addr. size must be
// 1, 2, 4 or 8; accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	var v uint64
	for i := uint8(0); i < size; i++ {
		a := addr + uint64(i)
		if p := m.pageFor(a, false); p != nil {
			v |= uint64(p[a&pageMask]) << (8 * i)
		}
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	for i := uint8(0); i < size; i++ {
		a := addr + uint64(i)
		p := m.pageFor(a, true)
		p[a&pageMask] = byte(v >> (8 * i))
	}
}

// Footprint returns the number of resident bytes (allocated pages * size).
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.pages)) * pageSize
}

// HashBelow returns an FNV-1a hash of all resident memory at addresses
// below limit. Differential tests use it to check that two executions (for
// example the canonical and a compiler-transformed build) left identical
// global and heap state, ignoring thread stacks.
func (m *Memory) HashBelow(limit uint64) uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		if pn<<pageShift < limit {
			pns = append(pns, pn)
		}
	}
	// Sort page numbers so the hash is order-independent.
	for i := 1; i < len(pns); i++ {
		for j := i; j > 0 && pns[j] < pns[j-1]; j-- {
			pns[j], pns[j-1] = pns[j-1], pns[j]
		}
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, pn := range pns {
		pg := m.pages[pn]
		zero := true
		for _, b := range pg {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			// All-zero pages are indistinguishable from absent memory;
			// skipping them keeps the hash stable when a transform merely
			// touches (reads and rewrites) untouched addresses.
			continue
		}
		h = (h ^ pn) * prime
		for _, b := range pg {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// signExtend widens a size-byte value read from memory to int64.
func signExtend(v uint64, size uint8) int64 {
	shift := 64 - 8*uint(size)
	return int64(v<<shift) >> shift
}
