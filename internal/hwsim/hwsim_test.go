package hwsim

import (
	"math"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/simt"
	"threadfuser/internal/vm"
)

// divergentProg builds a program with data-dependent branching, a loop with
// tid-dependent trip count, and a helper call, exercising every control
// construct the lockstep executor handles.
func divergentProg(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("hwtest")

	helper := pb.NewFunc("helper")
	h0 := helper.NewBlock("h0")
	h1 := helper.NewBlock("h1")
	h2 := helper.NewBlock("h2")
	h3 := helper.NewBlock("h3")
	h0.Rem(ir.Rg(ir.R(2)), ir.Imm(3)).Cmp(ir.Rg(ir.R(2)), ir.Imm(0)).Jcc(ir.CondEQ, h1, h2)
	h1.Nop(2).Jmp(h3)
	h2.Nop(5).Jmp(h3)
	h3.Ret()

	w := pb.NewFunc("worker")
	w0 := w.NewBlock("init")
	loop := w.NewBlock("loop")
	call := w.NewBlock("call")
	tail := w.NewBlock("tail")
	done := w.NewBlock("done")
	w0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		Rem(ir.Rg(ir.R(0)), ir.Imm(5)).
		Add(ir.Rg(ir.R(0)), ir.Imm(1)).
		Mov(ir.Rg(ir.R(1)), ir.Imm(0)).
		Jmp(loop)
	loop.Mov(ir.Rg(ir.R(2)), ir.Rg(ir.R(1))).
		Add(ir.Rg(ir.R(2)), ir.Rg(ir.TID)).
		Call(helper, call)
	call.Add(ir.Rg(ir.R(1)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(1)), ir.Rg(ir.R(0))).
		Jcc(ir.CondLT, loop, tail)
	tail.Nop(2).Jmp(done)
	done.Ret()
	pb.SetEntry(w)
	return pb.MustBuild()
}

// TestOracleMatchesAnalyzer is the differential test at the heart of the
// figure-5 correlation story: for a lock-free program, the analyzer's
// trace-based prediction and the live lockstep oracle must measure identical
// efficiency and transaction counts when both model the same binary (the
// paper's O0/O1 "perfect 1.0 correlation" case).
func TestOracleMatchesAnalyzer(t *testing.T) {
	prog := divergentProg(t)
	const threads = 32
	for _, ws := range []int{4, 8, 16, 32} {
		// Oracle path: live lockstep execution.
		hw, err := Run(vm.NewProcess(prog), threads, Options{WarpSize: ws}, nil)
		if err != nil {
			t.Fatalf("warp %d: hwsim: %v", ws, err)
		}
		// Analyzer path: sequential tracing + SIMT-stack replay.
		tr, err := vm.TraceAll(vm.NewProcess(prog), threads, vm.RunConfig{}, nil)
		if err != nil {
			t.Fatalf("warp %d: tracing: %v", ws, err)
		}
		opts := core.Defaults()
		opts.WarpSize = ws
		rep, err := core.Analyze(tr, opts)
		if err != nil {
			t.Fatalf("warp %d: analyze: %v", ws, err)
		}

		if got, want := rep.Efficiency, hw.Efficiency(); math.Abs(got-want) > 1e-9 {
			t.Errorf("warp %d: analyzer efficiency %v != oracle %v", ws, got, want)
		}
		ht := hw.Total()
		if rep.HeapTx != ht.HeapTx || rep.StackTx != ht.StackTx {
			t.Errorf("warp %d: analyzer tx (heap %d, stack %d) != oracle (heap %d, stack %d)",
				ws, rep.HeapTx, rep.StackTx, ht.HeapTx, ht.StackTx)
		}
		if rep.LockstepInstrs != ht.Lockstep {
			t.Errorf("warp %d: analyzer lockstep %d != oracle %d", ws, rep.LockstepInstrs, ht.Lockstep)
		}
	}
}

func TestOracleConvergentEfficiencyIsOne(t *testing.T) {
	pb := ir.NewBuilder("conv")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b0.Nop(5).Jmp(b1)
	b1.Nop(2).Ret()
	prog := pb.MustBuild()

	res, err := Run(vm.NewProcess(prog), 64, Options{WarpSize: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Efficiency(); math.Abs(got-1) > 1e-12 {
		t.Errorf("efficiency = %v, want 1", got)
	}
	if len(res.Warps) != 2 {
		t.Errorf("warps = %d, want 2", len(res.Warps))
	}
}

func TestOracleThreadResultsMatchSequential(t *testing.T) {
	// Lockstep scheduling must not change what each thread computes when
	// threads write disjoint memory: compare final memory contents of a
	// lockstep run against sequential tracing.
	pb := ir.NewBuilder("store")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	// out[tid] = tid*3 + 1
	b.Mov(ir.Rg(ir.R(1)), ir.Rg(ir.TID)).
		Mul(ir.Rg(ir.R(1)), ir.Imm(3)).
		Add(ir.Rg(ir.R(1)), ir.Imm(1)).
		Mov(ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8), ir.Rg(ir.R(1))).
		Ret()
	prog := pb.MustBuild()

	const n = 16
	setup := func(p *vm.Process) (base uint64) { return p.AllocGlobal(8 * n) }

	pSeq := vm.NewProcess(prog)
	baseSeq := setup(pSeq)
	if _, err := vm.TraceAll(pSeq, n, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(baseSeq))
	}); err != nil {
		t.Fatal(err)
	}

	pHW := vm.NewProcess(prog)
	baseHW := setup(pHW)
	if _, err := Run(pHW, n, Options{WarpSize: 8}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(baseHW))
	}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		seq := pSeq.ReadI64(baseSeq + uint64(8*i))
		hw := pHW.ReadI64(baseHW + uint64(8*i))
		if seq != hw || seq != int64(i*3+1) {
			t.Errorf("slot %d: sequential %d, lockstep %d, want %d", i, seq, hw, i*3+1)
		}
	}
}

// TestOracleListenerAndBudget exercises the remaining hwsim options: the
// listener must observe exactly the lockstep issue count, and a tiny
// instruction budget must abort rather than hang.
func TestOracleListenerAndBudget(t *testing.T) {
	prog := divergentProg(t)
	count := &hwCounter{}
	res, err := Run(vm.NewProcess(prog), 8, Options{WarpSize: 8, Listener: count}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if count.instrs != res.Total().Lockstep {
		t.Errorf("listener saw %d lockstep instrs, metrics say %d", count.instrs, res.Total().Lockstep)
	}
	if _, err := Run(vm.NewProcess(prog), 8, Options{WarpSize: 8, MaxInstrs: 10}, nil); err == nil {
		t.Error("10-instruction budget did not abort")
	}
}

type hwCounter struct{ instrs uint64 }

func (c *hwCounter) OnBlock(be *simt.BlockExec) { c.instrs += be.Records[0].N }
