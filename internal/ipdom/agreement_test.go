package ipdom_test

import (
	"testing"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/workloads"
)

// TestStaticDynamicIPDomAgreement is the golden cross-check between the two
// CFG sources: for every function of every built-in workload, the
// post-dominator trees computed from the static graphs (cfg.FromFunction,
// what the static oracle uses for reconvergence points) must agree with the
// trees reconstructed from the trace (cfg.Build, what the replay engine
// uses).
//
// Agreement has a direction. A trace only contains observed edges, so the
// dynamic graph's edge set is a subset of the static one, and removing
// edges can only grow a block's post-dominator set. The invariant is
// therefore containment: the static IPDom of every executed block must
// still post-dominate it in the dynamic graph. When the trace covered every
// static edge the two graphs are identical and the trees must match
// exactly, block for block.
func TestStaticDynamicIPDomAgreement(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			dynGraphs, err := cfg.Build(tr)
			if err != nil {
				t.Fatal(err)
			}
			statGraphs := cfg.FromProgram(inst.Prog)

			for fid, dyn := range dynGraphs {
				stat := statGraphs[fid]
				if stat == nil {
					t.Fatalf("func %d traced but absent from the static program", fid)
				}
				name := inst.Prog.Funcs[fid].Name
				if dyn.NBlocks != stat.NBlocks {
					t.Fatalf("%s: %d blocks in the trace, %d in the program", name, dyn.NBlocks, stat.NBlocks)
				}

				// Observed edges must be a subset of the static edges —
				// otherwise the trace took a branch the IR doesn't have and
				// neither tree means anything.
				covered := true
				for b := int32(0); b < int32(dyn.NBlocks); b++ {
					for _, s := range dyn.Succs(b) {
						if !stat.HasEdge(b, s) {
							t.Fatalf("%s: observed edge b%d->%v missing from the static CFG", name, b, s)
						}
					}
					if len(dyn.Succs(b)) != len(stat.Succs(b)) {
						covered = false
					}
				}

				dynPD := ipdom.Compute(dyn)
				statPD := ipdom.Compute(stat)
				for b := int32(0); b < int32(dyn.NBlocks); b++ {
					if len(dyn.Succs(b)) == 0 {
						continue // never executed: no dynamic evidence
					}
					s := statPD.IPDom(b)
					if !dynPD.PostDominates(s, b) {
						t.Errorf("%s: static IPDom(b%d) = %v does not post-dominate b%d in the trace-built graph (dynamic IPDom %v)",
							name, b, s, b, dynPD.IPDom(b))
					}
					if covered && s != dynPD.IPDom(b) {
						t.Errorf("%s: full edge coverage but IPDom(b%d) disagrees: static %v, dynamic %v",
							name, b, s, dynPD.IPDom(b))
					}
				}
			}
		})
	}
}
