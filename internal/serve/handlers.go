package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	"threadfuser/internal/analysis"
	"threadfuser/internal/check"
	"threadfuser/internal/core"
	"threadfuser/internal/opt"
	"threadfuser/internal/staticlock"
	"threadfuser/internal/staticmem"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

// spoolTrace drains the request body to a spool file and decodes it through
// the indexed reader path (which transparently falls back for v1/v2
// streams). The spool file is removed before returning: the decoded trace
// is fully in memory and nothing on disk outlives the request. The returned
// status is the HTTP code to fail with when err != nil.
func (s *Server) spoolTrace(w http.ResponseWriter, r *http.Request) (*trace.Trace, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	f, err := os.CreateTemp(s.cfg.SpoolDir, "tfserve-spool-*.tft")
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("creating spool file: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	n, err := io.Copy(f, body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds %d-byte limit", maxErr.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading upload: %w", err)
	}
	if cl := r.ContentLength; cl >= 0 && cl != n {
		return nil, http.StatusBadRequest,
			fmt.Errorf("upload truncated: Content-Length %d, body %d bytes", cl, n)
	}
	tr, err := trace.DecodeStrict(f, n, s.cfg.DecodeParallelism)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("decoding trace: %w", err)
	}
	return tr, 0, nil
}

// queryInt parses an optional integer query parameter.
func queryInt(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %q is not an integer", name, v)
	}
	return n, nil
}

// queryBool parses an optional boolean query parameter.
func queryBool(q url.Values, name string) (bool, error) {
	v := q.Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("parameter %s: %q is not a boolean", name, v)
	}
	return b, nil
}

func parseFormation(name string) (warp.Formation, error) {
	switch name {
	case "", "round-robin":
		return warp.RoundRobin, nil
	case "strided":
		return warp.Strided, nil
	case "greedy", "greedy-entry":
		return warp.GreedyEntry, nil
	}
	return 0, fmt.Errorf("unknown formation %q (want round-robin, strided or greedy)", name)
}

// coreOptions builds the analyzer configuration shared by the analyze and
// lint endpoints from query parameters.
func (s *Server) coreOptions(q url.Values) (core.Options, error) {
	opts := core.Defaults()
	ws, err := queryInt(q, "warp", opts.WarpSize)
	if err != nil {
		return opts, err
	}
	if ws < 1 {
		return opts, fmt.Errorf("parameter warp: %d is not a positive warp size", ws)
	}
	opts.WarpSize = ws
	if opts.Formation, err = parseFormation(q.Get("formation")); err != nil {
		return opts, err
	}
	if opts.EmulateLocks, err = queryBool(q, "locks"); err != nil {
		return opts, err
	}
	opts.Parallelism = s.cfg.ReplayParallelism
	return opts, nil
}

// handleAnalyze serves POST /v1/analyze: a .tft body in, a core.Report out.
// Parameters: warp, formation, locks, tenant.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	opts, err := s.coreOptions(r.URL.Query())
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr, status, err := s.spoolTrace(w, r)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, status, "%v", err)
		return
	}
	// The dedup key is the content-addressed cache key: trace digest plus
	// the semantic options — exactly the identity under which two requests
	// are guaranteed the same report.
	key, err := core.CacheKey(tr, opts)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	s.serveFlight(ctx, w, "analyze\x00"+key, func(jctx context.Context) *outcome {
		return s.runJob(jctx, func(jctx context.Context) (any, bool, error) {
			o := opts
			o.Context = jctx
			if s.cfg.Cache != nil {
				rep, hit, err := core.AnalyzeCached(s.cfg.Cache, tr, o)
				return rep, hit, err
			}
			rep, err := core.Analyze(tr, o)
			return rep, false, err
		})
	})
}

// handleLint serves POST /v1/lint: a .tft body in, an analysis.Report out.
// Parameters: warp, formation, min (severity), passes (comma-separated),
// tenant.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query()
	copts, err := s.coreOptions(q)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := analysis.Options{
		WarpSize:    copts.WarpSize,
		Formation:   copts.Formation,
		Parallelism: s.cfg.ReplayParallelism,
		Cache:       s.cfg.Cache,
	}
	if m := q.Get("min"); m != "" {
		if opts.MinSeverity, err = analysis.ParseSeverity(m); err != nil {
			s.stats.clientErrors.Add(1)
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if p := q.Get("passes"); p != "" {
		opts.Passes = splitList(p)
	}
	tr, status, err := s.spoolTrace(w, r)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, status, "%v", err)
		return
	}
	digest, err := core.TraceDigest(tr)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	key := fmt.Sprintf("lint\x00%s\x00w=%d f=%d min=%d passes=%s",
		digest, opts.WarpSize, opts.Formation, opts.MinSeverity, strings.Join(opts.Passes, ","))
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	s.serveFlight(ctx, w, key, func(jctx context.Context) *outcome {
		return s.runJob(jctx, func(jctx context.Context) (any, bool, error) {
			o := opts
			o.Context = jctx
			rep, err := analysis.Run(tr, o)
			return rep, false, err
		})
	})
}

// handleCheck serves POST /v1/check: a .tft body in, a check.Report out.
// Parameters: warps (comma list), parallel (comma list), formations (comma
// list), props (comma list), tenant.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query()
	var opts check.Options
	opts.Cache = s.cfg.Cache
	var err error
	if opts.WarpSizes, err = splitInts(q.Get("warps")); err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "parameter warps: %v", err)
		return
	}
	if opts.Parallelism, err = splitInts(q.Get("parallel")); err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "parameter parallel: %v", err)
		return
	}
	for _, name := range splitList(q.Get("formations")) {
		f, err := parseFormation(name)
		if err != nil {
			s.stats.clientErrors.Add(1)
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts.Formations = append(opts.Formations, f)
	}
	opts.Props = splitList(q.Get("props"))
	tr, status, err := s.spoolTrace(w, r)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, status, "%v", err)
		return
	}
	digest, err := core.TraceDigest(tr)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	key := fmt.Sprintf("check\x00%s\x00warps=%v par=%v form=%v props=%s",
		digest, opts.WarpSizes, opts.Parallelism, opts.Formations, strings.Join(opts.Props, ","))
	name := q.Get("name")
	if name == "" {
		name = "upload"
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	s.serveFlight(ctx, w, key, func(jctx context.Context) *outcome {
		return s.runJob(jctx, func(jctx context.Context) (any, bool, error) {
			o := opts
			o.Context = jctx
			rep, err := check.Run(name, tr, o)
			return rep, false, err
		})
	})
}

// StaticReport is the GET /v1/static payload: one static oracle result
// for a bundled workload's program.
type StaticReport struct {
	Workload string             `json:"workload"`
	Opt      string             `json:"opt"`
	SIMT     *staticsimt.Result `json:"simt,omitempty"`
	Locks    *staticlock.Result `json:"locks,omitempty"`
	Mem      *staticmem.Result  `json:"mem,omitempty"`
}

// handleStatic serves GET /v1/static?workload=NAME: static analyses need
// the program's IR, which trace uploads don't carry, so this endpoint runs
// over the bundled workloads by name. Parameters: workload (required; see
// /v1/static with none for the list), mode (simt|locks|mem, default simt),
// opt (O0..O3, default O1), threads, seed, budget.
func (s *Server) handleStatic(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query()
	name := q.Get("workload")
	if name == "" {
		var names []string
		for _, wl := range workloads.All() {
			names = append(names, wl.Name)
		}
		sort.Strings(names)
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "parameter workload required; available: %s",
			strings.Join(names, ", "))
		return
	}
	wl, err := workloads.ByName(name)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "simt"
	}
	if mode != "simt" && mode != "locks" && mode != "mem" {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "parameter mode: %q (want simt, locks or mem)", mode)
		return
	}
	level := q.Get("opt")
	if level == "" {
		level = "O1"
	}
	lvl, ok := parseOptLevel(level)
	if !ok {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "parameter opt: unknown level %q", level)
		return
	}
	threads, err := queryInt(q, "threads", 0)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	seed, err := queryInt(q, "seed", 1)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := queryInt(q, "budget", 0)
	if err != nil {
		s.stats.clientErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := fmt.Sprintf("static\x00%s\x00mode=%s opt=%s threads=%d seed=%d budget=%d",
		name, mode, lvl, threads, seed, budget)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	s.serveFlight(ctx, w, key, func(jctx context.Context) *outcome {
		return s.runJob(jctx, func(jctx context.Context) (any, bool, error) {
			inst, err := wl.Instantiate(workloads.Config{Threads: threads, Seed: int64(seed)})
			if err != nil {
				return nil, false, err
			}
			prog := inst.Prog
			if lvl != opt.O1 {
				prog = opt.Apply(prog, lvl)
			}
			resp := &StaticReport{Workload: wl.Name, Opt: lvl.String()}
			switch mode {
			case "locks":
				resp.Locks = staticlock.Analyze(prog)
			case "mem":
				resp.Mem = staticmem.Analyze(prog)
			default:
				sopts := staticsimt.Options{}
				if budget > 0 {
					sopts.MeldBudget = budget
				}
				resp.SIMT = staticsimt.Analyze(prog, sopts)
			}
			return resp, false, nil
		})
	})
}

func parseOptLevel(s string) (opt.Level, bool) {
	for _, l := range opt.Levels {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}

// splitList splits a comma-separated parameter, dropping empty elements.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitInts splits a comma-separated list of integers.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}
