// Package analysis is ThreadFuser's diagnosis layer: a pass-manager-driven
// engine that runs an ordered set of analyses over a prepared trace and
// emits structured findings instead of metrics. Where internal/core answers
// "how efficiently would this program run under SIMT semantics", this
// package answers "what, concretely, should the developer change before
// porting it" — the lockset race detector surfaces data races the SIMT
// serialization model would silently mask, the divergence lint ranks the
// divergent regions worth restructuring (and flags DARM-style meldable
// diamonds), the lock lint localizes serialization cost and leaked
// acquisitions, and the trace sanitizer validates the input stream itself.
//
// Passes share one core.Session, so the memoized DCFG/IPDOM products and
// warp formations are built once per trace no matter how many passes (or
// replay configurations) consume them.
package analysis

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"threadfuser/internal/cfg"
	"threadfuser/internal/core"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// Severity ranks findings. The zero value is SevInfo so accidental zero
// findings sort last, not first.
type Severity int

const (
	// SevInfo marks opportunities (a meldable diamond, a modest divergent
	// region) that are worth knowing but block nothing.
	SevInfo Severity = iota
	// SevWarning marks likely defects or dominant costs (leak paths,
	// lock-order inversions, heavy serialization).
	SevWarning
	// SevError marks definite defects: data races, runtime lock leaks, and
	// structurally invalid traces.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes severities by name so JSON reports are readable and
// round-trip exactly.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity parses "info", "warning"/"warn" or "error".
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(name) {
	case "info":
		return SevInfo, nil
	case "warning", "warn":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("analysis: unknown severity %q (want info, warning or error)", name)
}

// Finding is one diagnostic emitted by a pass. Location fields that do not
// apply hold -1 (Block, Thread, Record) or are empty (Function, Addr,
// Threads); Details carries pass-specific machine-readable values.
type Finding struct {
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	// Function/Block locate the finding on the DCFG; Thread/Record locate
	// it in the trace stream; Addr names the memory or lock word involved.
	Function string            `json:"function,omitempty"`
	Block    int32             `json:"block"`
	Thread   int               `json:"thread"`
	Threads  []int             `json:"threads,omitempty"`
	Record   int               `json:"record"`
	Addr     uint64            `json:"addr,omitempty"`
	Message  string            `json:"message"`
	Details  map[string]string `json:"details,omitempty"`
}

// finding returns a Finding with every location field marked not-applicable.
func finding(pass string, sev Severity) Finding {
	return Finding{Pass: pass, Severity: sev, Block: -1, Thread: -1, Record: -1}
}

// Location renders the most specific position the finding carries, or "".
func (f *Finding) Location() string {
	switch {
	case f.Function != "" && f.Block >= 0:
		return fmt.Sprintf("%s.b%d", f.Function, f.Block)
	case f.Function != "":
		return f.Function
	case f.Thread >= 0 && f.Record >= 0:
		return fmt.Sprintf("thread %d record %d", f.Thread, f.Record)
	case f.Thread >= 0:
		return fmt.Sprintf("thread %d", f.Thread)
	}
	return ""
}

// Pass is one analysis. Run reports problems through the context; an error
// return means the pass itself could not complete (it is surfaced as an
// error-severity finding, not a process failure).
type Pass interface {
	ID() string
	Desc() string
	Run(ctx *Context) error
}

// Passes returns the engine's passes in their fixed execution order. The
// sanitizer always runs first: its error findings gate the structural
// passes, which assume a well-formed trace. The static passes ("static",
// "staticlock", "staticmem") additionally require Options.Prog and are
// skipped for trace-only inputs.
func Passes() []Pass {
	return []Pass{sanitizePass{}, locksetPass{}, divergencePass{}, lockLintPass{}, deadlockPass{}, staticPass{}, staticLockPass{}, staticMemPass{}}
}

// Options configure a lint run.
type Options struct {
	// WarpSize is the modelled SIMD width (default 32).
	WarpSize int
	// Formation selects the thread-batching algorithm.
	Formation warp.Formation
	// Parallelism bounds the worker pools (replay workers and per-function
	// pass fan-out): 0 means one per core, 1 forces serial execution.
	// Findings are identical at every setting.
	Parallelism int
	// Passes selects a subset of pass ids to run (nil/empty = all).
	Passes []string
	// MinSeverity drops findings below the threshold from the report.
	MinSeverity Severity
	// Prog attaches the traced program's IR, enabling the static pass
	// (static-oracle-vs-replay comparison). Nil disables it: trace-only
	// inputs have no IR to analyze.
	Prog *ir.Program
	// Cache, if set, is attached to the run's session: replay reports the
	// passes request are served from it when present and stored after
	// computation. Findings are unaffected — only replay time is.
	Cache *core.Cache
	// Context, if non-nil, cancels the replays the passes request; the
	// analysis service threads request timeouts through it. Findings of a
	// run that completes are unaffected.
	Context context.Context
}

// Context is the shared state passes run against.
type Context struct {
	Trace *trace.Trace
	// Graphs/PDoms are the session's memoized DCFG and post-dominator
	// products. They are nil while the sanitizer runs (it must not assume a
	// buildable trace) and set before any structural pass.
	Graphs map[uint32]*cfg.DCFG
	PDoms  map[uint32]*ipdom.PostDom
	Opts   Options

	sess     *core.Session
	mu       sync.Mutex
	findings []Finding
	reports  [2]*core.Report
	repErr   [2]error
	repDone  [2]bool
	funcIDs  map[string]uint32
}

// add appends one finding; safe for concurrent use from pass worker pools.
func (c *Context) add(f Finding) {
	c.mu.Lock()
	c.findings = append(c.findings, f)
	c.mu.Unlock()
}

// Report returns the trace's replay report with or without lock emulation,
// memoized so the two replays happen at most once across all passes.
func (c *Context) Report(emulateLocks bool) (*core.Report, error) {
	idx := 0
	if emulateLocks {
		idx = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.repDone[idx] {
		opts := core.Defaults()
		opts.WarpSize = c.Opts.WarpSize
		opts.Formation = c.Opts.Formation
		opts.Parallelism = c.Opts.Parallelism
		opts.EmulateLocks = emulateLocks
		opts.Context = c.Opts.Context
		c.reports[idx], c.repErr[idx] = c.sess.Analyze(c.Trace, opts)
		c.repDone[idx] = true
	}
	return c.reports[idx], c.repErr[idx]
}

// funcID resolves a function name back to its symbol-table id (first
// occurrence wins, matching core.Report's name index).
func (c *Context) funcID(name string) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.funcIDs == nil {
		c.funcIDs = make(map[string]uint32, len(c.Trace.Funcs))
		for id := range c.Trace.Funcs {
			if _, dup := c.funcIDs[c.Trace.Funcs[id].Name]; !dup {
				c.funcIDs[c.Trace.Funcs[id].Name] = uint32(id)
			}
		}
	}
	id, ok := c.funcIDs[name]
	return id, ok
}

// Report is the engine's output for one trace.
type Report struct {
	Program  string `json:"program"`
	WarpSize int    `json:"warp_size"`
	// Findings is sorted by severity (errors first), then pass id and
	// location, so output is deterministic at every parallelism setting.
	Findings []Finding `json:"findings"`
	// SkippedPasses lists passes that did not run and why (a trace that
	// fails sanitization skips every structural pass).
	SkippedPasses []string `json:"skipped_passes,omitempty"`
	Errors        int      `json:"errors"`
	Warnings      int      `json:"warnings"`
	Infos         int      `json:"infos"`
}

// CountAtLeast returns the number of findings at or above the severity.
func (r *Report) CountAtLeast(min Severity) int {
	n := 0
	for i := range r.Findings {
		if r.Findings[i].Severity >= min {
			n++
		}
	}
	return n
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (warp %d): %d error(s), %d warning(s), %d info\n",
		r.Program, r.WarpSize, r.Errors, r.Warnings, r.Infos)
	for i := range r.Findings {
		f := &r.Findings[i]
		loc := f.Location()
		if loc != "" {
			loc = " " + loc
		}
		fmt.Fprintf(w, "  %-7s [%s]%s: %s\n", strings.ToUpper(f.Severity.String()), f.Pass, loc, f.Message)
	}
	for _, s := range r.SkippedPasses {
		fmt.Fprintf(w, "  skipped %s\n", s)
	}
}

// Run lints one trace with a fresh session.
func Run(t *trace.Trace, opts Options) (*Report, error) {
	return RunSession(core.NewSession(), t, opts)
}

// RunSession lints one trace, reusing the session's memoized preparation
// and warp formations. The returned error covers only engine misuse (bad
// options); problems with the trace itself become findings.
func RunSession(sess *core.Session, t *trace.Trace, opts Options) (*Report, error) {
	if opts.WarpSize == 0 {
		opts.WarpSize = 32
	}
	if opts.WarpSize < 1 || opts.WarpSize > simt.MaxWarpSize {
		return nil, fmt.Errorf("analysis: warp size %d out of range 1..%d", opts.WarpSize, simt.MaxWarpSize)
	}
	if opts.Cache != nil {
		sess.SetCache(opts.Cache)
	}
	all := Passes()
	selected := make(map[string]bool, len(all))
	if len(opts.Passes) == 0 {
		for _, p := range all {
			selected[p.ID()] = true
		}
	} else {
		known := make(map[string]bool, len(all))
		for _, p := range all {
			known[p.ID()] = true
		}
		for _, id := range opts.Passes {
			if !known[id] {
				return nil, fmt.Errorf("analysis: unknown pass %q", id)
			}
			selected[id] = true
		}
	}

	ctx := &Context{Trace: t, Opts: opts, sess: sess}

	// The sanitizer always executes, selected or not: its error findings
	// decide whether the structural passes can trust the trace.
	mark := 0
	if err := (sanitizePass{}).Run(ctx); err != nil {
		return nil, err
	}
	structuralErrs := 0
	for i := range ctx.findings {
		if ctx.findings[i].Severity == SevError {
			structuralErrs++
		}
	}
	if !selected[(sanitizePass{}).ID()] {
		ctx.findings = ctx.findings[:mark]
	}

	var skipped []string
	runStructural := func(reason string) {
		for _, p := range all[1:] {
			if selected[p.ID()] {
				skipped = append(skipped, fmt.Sprintf("%s: %s", p.ID(), reason))
			}
		}
	}
	if structuralErrs > 0 {
		runStructural("trace failed sanitization")
	} else {
		graphs, pdoms, err := sess.Prepared(t)
		if err != nil {
			// The sanitizer should subsume every preparation invariant;
			// degrade gracefully if it ever misses one.
			f := finding("sanitize", SevError)
			f.Message = fmt.Sprintf("trace preparation failed: %v", err)
			ctx.add(f)
			runStructural("trace preparation failed")
		} else {
			ctx.Graphs, ctx.PDoms = graphs, pdoms
			for _, p := range all[1:] {
				if !selected[p.ID()] {
					continue
				}
				if (p.ID() == "static" || p.ID() == "staticlock" || p.ID() == "staticmem") && opts.Prog == nil {
					// Only surface the skip when the pass was asked for by
					// name; an all-passes run over a trace-only input just
					// omits it silently.
					if len(opts.Passes) > 0 {
						skipped = append(skipped, p.ID()+": no program attached (trace-only input)")
					}
					continue
				}
				if err := p.Run(ctx); err != nil {
					f := finding(p.ID(), SevError)
					f.Message = fmt.Sprintf("pass failed: %v", err)
					ctx.add(f)
				}
			}
		}
	}

	rep := &Report{Program: t.Program, WarpSize: opts.WarpSize, SkippedPasses: skipped}
	for i := range ctx.findings {
		f := ctx.findings[i]
		if f.Severity < opts.MinSeverity {
			continue
		}
		rep.Findings = append(rep.Findings, f)
		switch f.Severity {
		case SevError:
			rep.Errors++
		case SevWarning:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	sortFindings(rep.Findings)
	return rep, nil
}

// sortFindings imposes the total order that makes reports deterministic
// regardless of the concurrency findings were produced under.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Record != b.Record {
			return a.Record < b.Record
		}
		return a.Message < b.Message
	})
}
