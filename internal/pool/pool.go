// Package pool provides a bounded, errgroup-style worker pool built only on
// the standard library (sync.WaitGroup plus a channel semaphore). The
// analyzer pipeline uses it to run independent workload×configuration cells
// of an experiment concurrently while keeping the goroutine count bounded by
// the machine's core count.
package pool

import (
	"runtime"
	"sync"
)

// Group runs tasks concurrently, at most limit at a time, and retains the
// first error. The zero value is not usable; call New.
type Group struct {
	sem     chan struct{}
	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// New returns a Group that runs at most limit tasks concurrently. A limit
// of 0 (or negative) uses runtime.GOMAXPROCS(0), the convention shared with
// core.Options.Parallelism; a limit of 1 degenerates to serial execution in
// submission order.
func New(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go submits one task. It blocks while the group is at its concurrency
// limit, so a producer loop is naturally throttled and never builds an
// unbounded goroutine backlog. Tasks submitted after a failure still run;
// callers that want early exit should check their own cancellation state.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.errOnce.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the first
// error any of them produced, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
