package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// TestDecodeStrict: the strict ingestion decoder accepts exactly what a
// client can have meant to send — a complete indexed container or a bare
// stream — and rejects containers whose index tail was damaged, which the
// lenient decoders deliberately tolerate.
func TestDecodeStrict(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	var v2, v3 bytes.Buffer
	if err := Encode(&v2, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeIndexed(&v3, tr); err != nil {
		t.Fatal(err)
	}

	decode := func(data []byte) (*Trace, error) {
		return DecodeStrict(bytes.NewReader(data), int64(len(data)), 1)
	}

	for name, data := range map[string][]byte{"bare stream": v2.Bytes(), "indexed": v3.Bytes()} {
		got, err := decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: strict decode differs from lenient decode", name)
		}
	}

	full := v3.Bytes()
	for name, data := range map[string][]byte{
		"cut mid-trailer":     full[:len(full)-trailerSize/2],
		"cut mid-footer":      full[:len(full)-trailerSize-4],
		"trailing junk":       append(append([]byte(nil), v2.Bytes()...), 0xde, 0xad),
		"one extra zero byte": append(append([]byte(nil), v2.Bytes()...), 0),
	} {
		// The lenient decoder accepts all of these (the stream itself is
		// intact); strict ingestion must not.
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			t.Fatalf("%s: lenient decode unexpectedly failed: %v", name, err)
		}
		if _, err := decode(data); err == nil {
			t.Fatalf("%s: strict decode accepted %d damaged bytes", name, len(data))
		}
	}
}
