GO ?= go

.PHONY: build vet test test-race bench check lint tfcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages the parallel analyzer pipeline touches: the
# per-warp replay workers, the session cache, the experiment cell pools, and
# the sweep/pool plumbing they are built on.
test-race:
	$(GO) test -race ./internal/simt/... ./internal/core/... ./internal/report/... ./internal/pool/... ./internal/gpusim/...

# Static sanity: go vet plus the tflint engine over workloads that must stay
# clean — any finding is a regression in either the workload or a pass.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/tflint -severity info -workload vectoradd,uncoalesced

# Verify the analyzer's invariant catalog: tfcheck over every built-in
# workload plus a batch of generated traces, and the Table-I golden-snapshot
# comparison (regenerate intentionally changed numbers with
# `go test ./internal/check -run TestGoldenTableI -update`).
tfcheck:
	$(GO) run ./cmd/tfcheck -all -gen 10 -q
	$(GO) test ./internal/check -run TestGoldenTableI -count=1

# Run the key analyzer benchmarks and record the perf trajectory in
# BENCH_analyzer.json (ns/op, allocs/op, serial-vs-parallel speedup).
bench:
	scripts/bench.sh

check: build vet test test-race lint tfcheck
