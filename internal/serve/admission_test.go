package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

// post issues one analyze upload and returns the response (body fully
// read into resp-independent storage via the second return).
func post(t *testing.T, client *http.Client, url string, tenant string, tft []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(tft))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestQueueSheddingNeverBlocks: with the engine wedged and the admission
// queue full, the next request is shed immediately with 429 + Retry-After —
// the accept loop must answer while every admitted request is still stuck.
func TestQueueSheddingNeverBlocks(t *testing.T) {
	release, _ := gateReplays(t)
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    2,
		TenantBudget:  8,
		RetryAfter:    3 * time.Second,
	})
	tft := tftBytes(t, testTrace(), false)

	// Two admitted requests: one wedged mid-replay, one waiting for the
	// engine slot. Distinct warp sizes so they are distinct flights.
	type result struct {
		status int
	}
	done := make(chan result, 2)
	for _, q := range []string{"warp=4", "warp=8"} {
		go func(q string) {
			resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?"+q, "", tft)
			done <- result{resp.StatusCode}
		}(q)
	}
	waitFor(t, func() bool { return srv.QueueInFlight() == 2 }, "both requests admitted")

	// The queue is full: this request must be rejected, and fast. The
	// deadline bounds how long "never blocks" may take — far below the
	// wedged replay's (infinite) duration.
	start := time.Now()
	resp, body := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=16", "", tft)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shedding took %v; the accept loop blocked behind wedged work", elapsed)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue returned %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}
	if got := srv.Snapshot().ShedQueue; got != 1 {
		t.Fatalf("shed_queue stat = %d, want 1", got)
	}

	release()
	for i := 0; i < 2; i++ {
		if r := <-done; r.status != 200 {
			t.Fatalf("admitted request finished with %d, want 200", r.status)
		}
	}
	if q := srv.QueueInFlight(); q != 0 {
		t.Fatalf("queue holds %d slots after drain", q)
	}
}

// TestTenantIsolation: one tenant exhausting its budget is shed without
// consuming shared queue room, and other tenants proceed untouched.
func TestTenantIsolation(t *testing.T) {
	release, _ := gateReplays(t)
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		TenantBudget:  1,
	})
	tft := tftBytes(t, testTrace(), false)

	// alice's first request wedges mid-replay, filling her budget of 1.
	aliceDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=4", "alice", tft)
		aliceDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.TenantInFlight("alice") == 1 }, "alice's first request admitted")

	// alice's second request: shed on her budget, not on the queue.
	resp, body := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=8", "alice", tft)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget tenant got %d (%s), want 429", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("alice")) {
		t.Fatalf("shed response does not name the tenant: %s", body)
	}
	st := srv.Snapshot()
	if st.ShedTenant != 1 || st.ShedQueue != 0 {
		t.Fatalf("shed_tenant=%d shed_queue=%d, want 1/0 (budget shed must not touch the queue)", st.ShedTenant, st.ShedQueue)
	}
	// Queue room is intact for bob: admitted (waiting on the engine), not shed.
	bobDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=8", "bob", tft)
		bobDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.TenantInFlight("bob") == 1 }, "bob admitted alongside wedged alice")

	release()
	if s := <-aliceDone; s != 200 {
		t.Fatalf("alice's wedged request finished %d, want 200", s)
	}
	if s := <-bobDone; s != 200 {
		t.Fatalf("bob's request finished %d, want 200", s)
	}
	if a, b := srv.TenantInFlight("alice"), srv.TenantInFlight("bob"); a != 0 || b != 0 {
		t.Fatalf("tenant budgets alice=%d bob=%d after completion, want 0/0", a, b)
	}
}

// TestRequestTimeout: a request whose deadline expires mid-replay returns
// 504 and cancels the abandoned computation.
func TestRequestTimeout(t *testing.T) {
	release, _ := gateReplays(t)
	srv, ts := newTestServer(t, Config{
		MaxConcurrent:  1,
		RequestTimeout: 50 * time.Millisecond,
	})
	tft := tftBytes(t, testTrace(), false)
	resp, body := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=4", "", tft)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request returned %d (%s), want 504", resp.StatusCode, body)
	}
	if got := srv.Snapshot().Timeouts; got == 0 {
		t.Fatal("timeout stat not incremented")
	}
	release()
	// The abandoned flight's context was canceled when its last waiter
	// left; once the gate opens its replay aborts and resources drain.
	waitFor(t, func() bool {
		return srv.QueueInFlight() == 0 && srv.engine.InUse() == 0
	}, "abandoned computation to cancel and release its slots")
}

// TestDrain: Drain stops admission (503 + Retry-After), waits for wedged
// in-flight work, and only returns once the last request finishes.
func TestDrain(t *testing.T) {
	release, _ := gateReplays(t)
	srv, ts := newTestServer(t, Config{MaxConcurrent: 2})
	tft := tftBytes(t, testTrace(), false)

	inflightDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=4", "", tft)
		inflightDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.QueueInFlight() == 1 }, "request admitted")

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	waitFor(t, srv.Draining, "drain to start")

	// New work is refused while draining.
	resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=8", "", tft)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain carries no Retry-After")
	}
	hc, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hc.Body.Close()
	if hc.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain got %d, want 503", hc.StatusCode)
	}

	// Drain must still be waiting on the wedged request.
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	if s := <-inflightDone; s != 200 {
		t.Fatalf("in-flight request finished %d during drain, want 200", s)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if q := srv.QueueInFlight(); q != 0 {
		t.Fatalf("queue holds %d slots after drain", q)
	}
}

// TestDrainDeadline: a drain whose context expires with work still wedged
// reports the interruption instead of hanging.
func TestDrainDeadline(t *testing.T) {
	release, _ := gateReplays(t)
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1})
	tft := tftBytes(t, testTrace(), false)
	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/analyze?warp=4", "", tft)
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.QueueInFlight() == 1 }, "request admitted")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a wedged request in flight")
	}
	release()
	if s := <-done; s != 200 {
		t.Fatalf("wedged request finished %d, want 200", s)
	}
}
