// Microservice triage: the figure-7 case study as a workflow. The paper
// measured HDSearch-Midtier at 7% SIMT efficiency, used ThreadFuser's
// per-function report to find that half the instructions came from FLANN's
// getpoint method at 6% efficiency (a kd-tree walk with data-dependent trip
// counts, listing 1), pinned the method's trip counts to the top-10
// results, and recovered 90% efficiency at 93% search accuracy.
//
// This example reproduces the whole loop: measure, localize, fix, re-measure.
//
// Run with:
//
//	go run ./examples/microservicetriage
package main

import (
	"fmt"
	"log"

	"threadfuser"
)

func main() {
	opts := threadfuser.Options{WarpSize: 32, Seed: 1}

	// Step 1: measure the service as-is.
	svc, err := threadfuser.Workload("usuite.hdsearch.mid")
	if err != nil {
		log.Fatal(err)
	}
	before, err := threadfuser.AnalyzeWorkload(svc, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDSearch-Midtier, as written: %.1f%% SIMT efficiency — a hopeless GPU port?\n\n",
		before.Efficiency*100)

	// Step 2: localize. The per-function report excludes callees, so a
	// library function hiding deep in the call stack cannot smear its
	// divergence over its callers.
	fmt.Printf("%-18s %12s %12s\n", "FUNCTION", "INSTR SHARE", "EFFICIENCY")
	var culprit threadfuser.FuncReport
	for _, f := range before.PerFunction {
		fmt.Printf("%-18s %11.1f%% %11.1f%%\n", f.Name, f.InstrShare*100, f.Efficiency*100)
		if f.InstrShare > culprit.InstrShare && f.Efficiency < 0.2 {
			culprit = f
		}
	}
	fmt.Printf("\nbottleneck: %q — %.0f%% of all instructions at %.1f%% efficiency.\n",
		culprit.Name, culprit.InstrShare*100, culprit.Efficiency*100)
	fmt.Println("In the paper this was FLANN's kd-tree bucket walk: every lane's")
	fmt.Println("`for (j = 0; j < num_point; j++) push_back(point)` ran a different trip count.")

	// Step 3: apply the SIMT-aware fix — pin the walk to the top-10
	// results for every query (the paper kept 93% search accuracy).
	fixed, err := threadfuser.Workload("usuite.hdsearch.mid.fixed")
	if err != nil {
		log.Fatal(err)
	}
	after, err := threadfuser.AnalyzeWorkload(fixed, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: re-measure.
	fmt.Printf("\nafter pinning %s trip counts: %.1f%% SIMT efficiency (%.1fx better)\n",
		culprit.Name, after.Efficiency*100, after.Efficiency/before.Efficiency)
	fmt.Println("(paper: 7% -> 90% while keeping 93% image-search accuracy)")
}
