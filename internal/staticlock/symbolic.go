package staticlock

import (
	"fmt"
	"sort"
	"strings"

	"threadfuser/internal/ir"
)

// The symbolic address domain: each register holds either nothing yet
// (bottom, for not-yet-joined paths), a linear expression
//
//	c + Σ coeff·root
//
// over a small set of opaque roots, or Top ("?", any value). Roots are the
// entry function's initial registers (argN), the thread id (tid), and the
// entry stack pointer (sp). Two assumptions give the roots their meaning and
// are documented as the analysis' soundness contract (DESIGN.md §13):
//
//   - shared-world: arg roots denote run constants identical across threads
//     (every built-in workload's ArgFn passes the same pointers/sizes to all
//     threads; the cross-check pass catches violations dynamically);
//   - per-thread roots: tid is the thread id, sp the base of the thread's
//     private stack segment.
//
// Anything non-linear — loads, bitwise ops, division — collapses to Top.

// rootKind discriminates symbolic roots.
type rootKind uint8

const (
	rootArg rootKind = iota // entry function's initial register value
	rootTID                 // the thread-id register's initial value
	rootSP                  // the entry stack pointer
)

// root is one opaque symbol; reg is meaningful for rootArg only.
type root struct {
	kind rootKind
	reg  uint8
}

// rootOrder gives the canonical term order: arg0..argN, then tid, then sp.
func (r root) order() int {
	switch r.kind {
	case rootArg:
		return int(r.reg)
	case rootTID:
		return int(ir.NumRegs)
	default:
		return int(ir.NumRegs) + 1
	}
}

func (r root) String() string {
	switch r.kind {
	case rootArg:
		return fmt.Sprintf("arg%d", r.reg)
	case rootTID:
		return "tid"
	default:
		return "sp"
	}
}

// term is one coeff·root summand; coeff is never zero in a normalized value.
type term struct {
	root  root
	coeff int64
}

type symKind uint8

const (
	symUnset symKind = iota // bottom: no path has defined the value yet
	symLin                  // linear expression c + Σ coeff·root
	symTop                  // unknown
)

// symval is one abstract register value. Terms are sorted by root order and
// hold no zero coefficients; the zero symval is Unset (the join identity).
type symval struct {
	kind  symKind
	c     int64
	terms []term
}

var top = symval{kind: symTop}

func symConst(c int64) symval { return symval{kind: symLin, c: c} }

func symRoot(r root) symval {
	return symval{kind: symLin, terms: []term{{root: r, coeff: 1}}}
}

// isConst reports a pure constant and its value.
func (v symval) isConst() (int64, bool) {
	if v.kind == symLin && len(v.terms) == 0 {
		return v.c, true
	}
	return 0, false
}

// coeffOf returns the coefficient of one root (0 when absent).
func (v symval) coeffOf(k rootKind) int64 {
	for _, t := range v.terms {
		if t.root.kind == k {
			return t.coeff
		}
	}
	return 0
}

// tidCoeff is the tid term's coefficient of a linear value.
func (v symval) tidCoeff() int64 { return v.coeffOf(rootTID) }

// precise reports a fully-known linear value (not Unset, not Top).
func (v symval) precise() bool { return v.kind == symLin }

// named reports a value that denotes a single concrete address, identical
// for every thread of a run: linear over arg roots and constants only.
func (v symval) named() bool {
	if v.kind != symLin {
		return false
	}
	for _, t := range v.terms {
		if t.root.kind != rootArg {
			return false
		}
	}
	return true
}

// spRooted reports a linear value containing the sp root — an address into
// the thread's private stack segment.
func (v symval) spRooted() bool {
	return v.kind == symLin && v.coeffOf(rootSP) != 0
}

func symAdd(a, b symval) symval {
	if a.kind == symTop || b.kind == symTop {
		return top
	}
	if a.kind == symUnset || b.kind == symUnset {
		return symval{} // bottom absorbs until defined
	}
	out := symval{kind: symLin, c: a.c + b.c}
	i, j := 0, 0
	for i < len(a.terms) || j < len(b.terms) {
		switch {
		case j >= len(b.terms) || (i < len(a.terms) && a.terms[i].root.order() < b.terms[j].root.order()):
			out.terms = append(out.terms, a.terms[i])
			i++
		case i >= len(a.terms) || b.terms[j].root.order() < a.terms[i].root.order():
			out.terms = append(out.terms, b.terms[j])
			j++
		default:
			if c := a.terms[i].coeff + b.terms[j].coeff; c != 0 {
				out.terms = append(out.terms, term{root: a.terms[i].root, coeff: c})
			}
			i++
			j++
		}
	}
	return out
}

func symNeg(a symval) symval { return symScale(a, -1) }

func symSub(a, b symval) symval { return symAdd(a, symNeg(b)) }

func symScale(a symval, k int64) symval {
	switch a.kind {
	case symTop:
		if k == 0 {
			return symConst(0)
		}
		return top
	case symUnset:
		return symval{}
	}
	if k == 0 {
		return symConst(0)
	}
	out := symval{kind: symLin, c: a.c * k}
	for _, t := range a.terms {
		out.terms = append(out.terms, term{root: t.root, coeff: t.coeff * k})
	}
	return out
}

// symMul multiplies two values: defined when either side is a pure constant.
func symMul(a, b symval) symval {
	if k, ok := b.isConst(); ok {
		return symScale(a, k)
	}
	if k, ok := a.isConst(); ok {
		return symScale(b, k)
	}
	if a.kind == symUnset || b.kind == symUnset {
		return symval{}
	}
	return top
}

// symShl is a left shift by a known constant amount.
func symShl(a symval, amount symval) symval {
	k, ok := amount.isConst()
	if !ok || k < 0 || k > 62 {
		if a.kind == symUnset || amount.kind == symUnset {
			return symval{}
		}
		return top
	}
	return symScale(a, 1<<uint(k))
}

func symEq(a, b symval) bool {
	if a.kind != b.kind || a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// symJoin is the lattice join: Unset is the identity, unequal linear values
// go to Top.
func symJoin(a, b symval) symval {
	if a.kind == symUnset {
		return b
	}
	if b.kind == symUnset {
		return a
	}
	if a.kind == symTop || b.kind == symTop {
		return top
	}
	if symEq(a, b) {
		return a
	}
	return top
}

// TopShape is the canonical rendering of an unknown address.
const TopShape = "?"

// shape renders the canonical string form of a value: sorted terms, hex
// constants, "?" for Top. Shape strings are the identity of static lock and
// address expressions throughout the package.
func (v symval) shape() string {
	switch v.kind {
	case symTop, symUnset: // Unset only escapes for unreached code; render unknown
		return TopShape
	}
	if len(v.terms) == 0 {
		return hexConst(v.c)
	}
	var sb strings.Builder
	for i, t := range v.terms {
		if i > 0 {
			sb.WriteByte('+')
		}
		if t.coeff == 1 {
			sb.WriteString(t.root.String())
		} else if t.coeff == -1 {
			sb.WriteByte('-')
			sb.WriteString(t.root.String())
		} else {
			fmt.Fprintf(&sb, "%d*%s", t.coeff, t.root)
		}
	}
	if v.c > 0 {
		sb.WriteByte('+')
		sb.WriteString(hexConst(v.c))
	} else if v.c < 0 {
		sb.WriteByte('-')
		sb.WriteString(hexConst(-v.c))
	}
	return sb.String()
}

func hexConst(c int64) string {
	if c < 0 {
		return fmt.Sprintf("-0x%x", uint64(-c))
	}
	return fmt.Sprintf("0x%x", uint64(c))
}

// sortTerms normalizes a term slice in place (construction sites keep terms
// sorted already; this is for hand-built test values).
func sortTerms(ts []term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].root.order() < ts[j].root.order() })
}
