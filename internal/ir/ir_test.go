package ir

import (
	"strings"
	"testing"
)

func buildMinimal(t *testing.T) *Program {
	t.Helper()
	pb := NewBuilder("min")
	f := pb.NewFunc("main")
	b := f.NewBlock("entry")
	b.Nop(1).Ret()
	return pb.MustBuild()
}

func TestBuilderMinimalProgram(t *testing.T) {
	p := buildMinimal(t)
	if len(p.Funcs) != 1 || p.Entry != 0 {
		t.Fatalf("unexpected program shape: %d funcs, entry %d", len(p.Funcs), p.Entry)
	}
	if p.FuncByName("main") == nil {
		t.Error("FuncByName failed")
	}
	if p.FuncByName("nope") != nil {
		t.Error("FuncByName returned a ghost")
	}
	if got := p.NumInstrsStatic(); got != 2 {
		t.Errorf("static instrs = %d, want 2", got)
	}
}

func TestBuilderRejectsDoubleBuild(t *testing.T) {
	pb := NewBuilder("x")
	f := pb.NewFunc("f")
	f.NewBlock("b").Ret()
	if _, err := pb.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Build(); err == nil {
		t.Error("second Build succeeded")
	}
}

func TestBuilderRejectsDuplicateFunctions(t *testing.T) {
	pb := NewBuilder("x")
	a := pb.NewFunc("f")
	a.NewBlock("b").Ret()
	b := pb.NewFunc("f")
	b.NewBlock("b").Ret()
	if _, err := pb.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate function not rejected: %v", err)
	}
}

func TestBuilderPanicsOnAppendAfterTerminator(t *testing.T) {
	pb := NewBuilder("x")
	f := pb.NewFunc("f")
	b := f.NewBlock("b")
	b.Ret()
	defer func() {
		if recover() == nil {
			t.Error("append after terminator did not panic")
		}
	}()
	b.Nop(1)
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	p := buildMinimal(t)
	p.Funcs[0].Blocks[0].Instrs = p.Funcs[0].Blocks[0].Instrs[:1] // drop ret
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("missing terminator not caught: %v", err)
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	cases := []func(f *FuncBuilder){
		func(f *FuncBuilder) { // jmp out of range
			b := f.NewBlock("b")
			b.b.Instrs = append(b.b.Instrs, Instr{Op: OpJmp, Target: 99})
		},
		func(f *FuncBuilder) { // jcc out of range
			b := f.NewBlock("b")
			b.b.Instrs = append(b.b.Instrs, Instr{Op: OpJcc, Target: 0, Fall: 99})
		},
		func(f *FuncBuilder) { // call out of range
			b := f.NewBlock("b")
			b.b.Instrs = append(b.b.Instrs, Instr{Op: OpCall, Callee: 42, Fall: 0})
		},
		func(f *FuncBuilder) { // empty switch
			b := f.NewBlock("b")
			b.b.Instrs = append(b.b.Instrs, Instr{Op: OpSwitch, Src: Imm(0)})
		},
	}
	for i, mk := range cases {
		pb := NewBuilder("bad")
		f := pb.NewFunc("f")
		mk(f)
		if _, err := pb.Build(); err == nil {
			t.Errorf("case %d: invalid control flow accepted", i)
		}
	}
}

func TestValidateCatchesTwoMemoryOperands(t *testing.T) {
	pb := NewBuilder("bad")
	f := pb.NewFunc("f")
	b := f.NewBlock("b")
	b.b.Instrs = append(b.b.Instrs,
		Instr{Op: OpMov, Dst: Mem(R(0), 0, 8), Src: Mem(R(1), 0, 8)},
		Instr{Op: OpRet})
	if _, err := pb.Build(); err == nil || !strings.Contains(err.Error(), "memory operands") {
		t.Errorf("two memory operands accepted: %v", err)
	}
}

func TestValidateCatchesBadSizes(t *testing.T) {
	pb := NewBuilder("bad")
	f := pb.NewFunc("f")
	b := f.NewBlock("b")
	b.b.Instrs = append(b.b.Instrs,
		Instr{Op: OpMov, Dst: Rg(R(0)), Src: Operand{Kind: OpndMem, Mem: MemRef{Base: R(1), Size: 3}}},
		Instr{Op: OpRet})
	if _, err := pb.Build(); err == nil {
		t.Error("3-byte access accepted")
	}
}

func TestRPanicsOnReservedRegisters(t *testing.T) {
	for _, i := range []int{-1, int(TID), int(SP), NumRegs} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", i)
				}
			}()
			R(i)
		}()
	}
	// Boundary: the highest general-purpose register is fine.
	if r := R(int(TID) - 1); r != TID-1 {
		t.Errorf("R(%d) = %d", int(TID)-1, r)
	}
}

func TestMemOperandClassification(t *testing.T) {
	cases := []struct {
		in          Instr
		load, store bool
	}{
		{Instr{Op: OpMov, Dst: Rg(R(0)), Src: Mem(R(1), 0, 8)}, true, false},
		{Instr{Op: OpMov, Dst: Mem(R(1), 0, 8), Src: Rg(R(0))}, false, true},
		{Instr{Op: OpAdd, Dst: Mem(R(1), 0, 8), Src: Rg(R(0))}, true, true},
		{Instr{Op: OpCmp, Dst: Mem(R(1), 0, 8), Src: Imm(3)}, true, false},
		{Instr{Op: OpLea, Dst: Rg(R(0)), Src: Mem(R(1), 0, 8)}, false, false},
		{Instr{Op: OpLock, Src: Mem(R(1), 0, 8)}, false, false},
		{Instr{Op: OpAdd, Dst: Rg(R(0)), Src: Rg(R(1))}, false, false},
	}
	for i, c := range cases {
		_, l, s := c.in.MemOperand()
		if l != c.load || s != c.store {
			in := c.in
			t.Errorf("case %d (%s): load/store = %v/%v, want %v/%v", i, in.String(), l, s, c.load, c.store)
		}
	}
}

func TestInstrClass(t *testing.T) {
	cases := []struct {
		in   Instr
		want Class
	}{
		{Instr{Op: OpAdd, Dst: Rg(R(0)), Src: Imm(1)}, ClassALU},
		{Instr{Op: OpAdd, Dst: Rg(R(0)), Src: Mem(R(1), 0, 8)}, ClassMem},
		{Instr{Op: OpFAdd, Dst: Rg(R(0)), Src: Rg(R(1))}, ClassFPU},
		{Instr{Op: OpFSqrt, Dst: Rg(R(0))}, ClassSFU},
		{Instr{Op: OpDiv, Dst: Rg(R(0)), Src: Imm(2)}, ClassSFU},
		{Instr{Op: OpJmp}, ClassCtrl},
		{Instr{Op: OpLock, Src: Rg(R(0))}, ClassSync},
		{Instr{Op: OpIO, Src: Imm(5)}, ClassSkip},
		{Instr{Op: OpLea, Dst: Rg(R(0)), Src: Mem(R(1), 0, 8)}, ClassALU},
	}
	for i, c := range cases {
		if got := c.in.Class(); got != c.want {
			t.Errorf("case %d: class = %v, want %v", i, got, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	pb := NewBuilder("orig")
	f := pb.NewFunc("f")
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b2 := f.NewBlock("b2")
	b0.Mov(Rg(R(0)), Imm(1)).Switch(Rg(R(0)), b1, b2)
	b1.Ret()
	b2.Ret()
	p := pb.MustBuild()

	c := Clone(p)
	c.Funcs[0].Blocks[0].Instrs[0].Src = Imm(99)
	c.Funcs[0].Blocks[0].Terminator().Targets[0] = 2
	if p.Funcs[0].Blocks[0].Instrs[0].Src.Imm != 1 {
		t.Error("clone shares instruction storage")
	}
	if p.Funcs[0].Blocks[0].Terminator().Targets[0] != 1 {
		t.Error("clone shares switch target storage")
	}
	if err := Validate(c); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if c.FuncByName("f") == nil {
		t.Error("clone lost the name index")
	}
}

func TestStringsAreStable(t *testing.T) {
	// String methods are used in error paths; make sure the common ones
	// don't regress into %!v noise.
	str := func(in Instr) string { return in.String() }
	checks := map[string]string{
		str(Instr{Op: OpAdd, Dst: Rg(R(2)), Src: Imm(7)}):                        "add r2, $7",
		str(Instr{Op: OpJcc, Cond: CondLT, Target: 3, Fall: 4}):                  "jlt b3 else b4",
		str(Instr{Op: OpMov, Dst: Rg(SP), Src: Rg(TID)}):                         "mov sp, tid",
		str(Instr{Op: OpMov, Dst: Rg(R(0)), Src: MemIdx(R(1), R(2), 8, -16, 4)}): "mov r0, [r1+r2*8-16]:4",
		OpFSqrt.String(): "fsqrt",
		CondUGE.String(): "uge",
	}
	for got, want := range checks {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOpcodeTerminators(t *testing.T) {
	terminators := map[Opcode]bool{
		OpJmp: true, OpJcc: true, OpSwitch: true, OpCall: true, OpCallR: true, OpRet: true,
	}
	for op := OpNop; op < numOpcodes; op++ {
		if got := op.IsTerminator(); got != terminators[op] {
			t.Errorf("%s: IsTerminator = %v, want %v", op, got, terminators[op])
		}
	}
}
