package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadfuser/internal/vm"
)

// TestCoalescePaperExample reproduces figure 4: 32 lanes accessing 4-byte
// elements 4 bytes apart coalesce into 4 transactions of 32 bytes; fully
// scattered lanes need one transaction each.
func TestCoalescePaperExample(t *testing.T) {
	var coalesced []Access
	base := uint64(0x1000)
	for lane := 0; lane < 32; lane++ {
		coalesced = append(coalesced, Access{Addr: base + uint64(4*lane), Size: 4})
	}
	if got := Count(coalesced); got != 4 {
		t.Errorf("figure-4 coalesced case = %d transactions, want 4", got)
	}

	var scattered []Access
	for lane := 0; lane < 32; lane++ {
		scattered = append(scattered, Access{Addr: base + uint64(4096*lane), Size: 4})
	}
	if got := Count(scattered); got != 32 {
		t.Errorf("scattered case = %d transactions, want 32", got)
	}
}

func TestCountEdgeCases(t *testing.T) {
	if got := Count(nil); got != 0 {
		t.Errorf("Count(nil) = %d", got)
	}
	// Same address from every lane: a broadcast costs one transaction.
	var same []Access
	for i := 0; i < 32; i++ {
		same = append(same, Access{Addr: 0x2000, Size: 8})
	}
	if got := Count(same); got != 1 {
		t.Errorf("broadcast = %d transactions, want 1", got)
	}
	// An 8-byte access straddling a sector boundary costs two.
	if got := Count([]Access{{Addr: TransactionSize - 4, Size: 8}}); got != 2 {
		t.Errorf("straddling access = %d transactions, want 2", got)
	}
	// Aligned 8-byte access costs one.
	if got := Count([]Access{{Addr: TransactionSize, Size: 8}}); got != 1 {
		t.Errorf("aligned access = %d transactions, want 1", got)
	}
}

func TestCountIgnoresOrderAndDuplicates(t *testing.T) {
	a := []Access{{Addr: 0, Size: 8}, {Addr: 64, Size: 8}, {Addr: 32, Size: 8}}
	b := []Access{{Addr: 64, Size: 8}, {Addr: 32, Size: 8}, {Addr: 0, Size: 8}, {Addr: 0, Size: 8}}
	if Count(a) != 3 || Count(b) != 3 {
		t.Errorf("Count not order/duplicate independent: %d vs %d", Count(a), Count(b))
	}
}

func TestSplitBySegment(t *testing.T) {
	accs := []Access{
		{Addr: vm.StackTop(0) - 8, Size: 8}, // stack
		{Addr: vm.HeapBase + 64, Size: 8},   // heap
		{Addr: vm.GlobalBase + 8, Size: 8},  // global counts with heap
	}
	stack, heap := Split(accs)
	if stack != 1 || heap != 2 {
		t.Errorf("Split = (%d stack, %d heap), want (1, 2)", stack, heap)
	}
}

// TestUnalignedStraddles pins the worst-alignment sector math: a warp of
// unaligned 8-byte lanes pays one extra sector over the aligned case, exactly
// the +1 in the static oracle's maxSectors bound.
func TestUnalignedStraddles(t *testing.T) {
	// 32 contiguous 8-byte lanes starting 4 bytes before a sector boundary:
	// the 256-byte extent [28, 284) touches sectors 0..8 — nine transactions,
	// one more than the aligned eight.
	var unaligned, aligned []Access
	for lane := 0; lane < 32; lane++ {
		unaligned = append(unaligned, Access{Addr: 28 + uint64(8*lane), Size: 8})
		aligned = append(aligned, Access{Addr: 32 + uint64(8*lane), Size: 8})
	}
	if got := Count(aligned); got != 8 {
		t.Errorf("aligned stride-8 warp = %d transactions, want 8", got)
	}
	if got := Count(unaligned); got != 9 {
		t.Errorf("unaligned stride-8 warp = %d transactions, want 9", got)
	}
	// Every lane straddling independently: scattered 8-byte accesses each
	// ending 4 bytes past a sector boundary cost two sectors apiece.
	var scattered []Access
	for lane := 0; lane < 16; lane++ {
		scattered = append(scattered, Access{Addr: uint64(4096*lane) + TransactionSize - 4, Size: 8})
	}
	if got := Count(scattered); got != 32 {
		t.Errorf("scattered straddling lanes = %d transactions, want 32", got)
	}
	// A 1-byte access never straddles; size 2 at the last byte of a sector
	// does. Both Bounds and Count must agree at the boundary.
	for _, c := range []struct {
		acc  Access
		want int
	}{
		{Access{Addr: TransactionSize - 1, Size: 1}, 1},
		{Access{Addr: TransactionSize - 1, Size: 2}, 2},
		{Access{Addr: TransactionSize - 2, Size: 2}, 1},
	} {
		if got := Count([]Access{c.acc}); got != c.want {
			t.Errorf("Count({%#x, %d}) = %d, want %d", c.acc.Addr, c.acc.Size, got, c.want)
		}
		if lo, hi := Bounds([]Access{c.acc}); lo != c.want || hi != c.want {
			t.Errorf("Bounds({%#x, %d}) = [%d, %d], want [%d, %d]", c.acc.Addr, c.acc.Size, lo, hi, c.want, c.want)
		}
	}
}

// TestProbeSetCap documents Count's fixed 136-entry probe set: any real warp
// needs at most 64 lanes × 2 sectors = 128 distinct sectors, so the cap is
// unreachable in replay, but a synthetic set beyond it must saturate at the
// cap rather than overflow or miscount.
func TestProbeSetCap(t *testing.T) {
	var accs []Access
	for i := 0; i < 200; i++ {
		accs = append(accs, Access{Addr: uint64(i) * 4096, Size: 4}) // one distinct sector each
	}
	if got := Count(accs); got != 136 {
		t.Errorf("200 distinct sectors = %d transactions, want the 136-entry cap", got)
	}
	// At and just below the cap the count stays exact.
	if got := Count(accs[:136]); got != 136 {
		t.Errorf("136 distinct sectors = %d transactions, want 136", got)
	}
	if got := Count(accs[:135]); got != 135 {
		t.Errorf("135 distinct sectors = %d transactions, want 135", got)
	}
	// Duplicates beyond the cap don't re-saturate: the set dedups first.
	dups := append(append([]Access{}, accs[:100]...), accs[:100]...)
	if got := Count(dups); got != 100 {
		t.Errorf("100 distinct sectors duplicated = %d transactions, want 100", got)
	}
}

// TestScratchSplitReuse: one Scratch serving many Split calls — the replay
// inner-loop pattern — must give the same answers as fresh package-level
// calls, including after a large call shrinks back to a small one.
func TestScratchSplitReuse(t *testing.T) {
	var big []Access
	for lane := 0; lane < 64; lane++ {
		big = append(big, Access{Addr: vm.HeapBase + uint64(4096*lane), Size: 8})
		big = append(big, Access{Addr: vm.StackTop(lane) - 8, Size: 8})
	}
	sets := [][]Access{
		big,
		{{Addr: vm.HeapBase, Size: 8}},
		nil,
		{{Addr: vm.StackTop(3) - 16, Size: 4}, {Addr: vm.GlobalBase, Size: 4}},
		big[:10],
	}
	var s Scratch
	for round := 0; round < 2; round++ {
		for i, accs := range sets {
			wantStack, wantHeap := Split(accs)
			gotStack, gotHeap := s.Split(accs)
			if gotStack != wantStack || gotHeap != wantHeap {
				t.Errorf("round %d set %d: Scratch.Split = (%d, %d), fresh Split = (%d, %d)",
					round, i, gotStack, gotHeap, wantStack, wantHeap)
			}
		}
	}
}

// Properties: the transaction count is bounded below by the footprint bound
// (total bytes / 32, rounded up, when accesses are disjoint) and above by
// sectors-per-access summed; it is invariant under permutation; and it is
// monotone under adding accesses.
func TestCountProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		accs := make([]Access, n)
		for i := range accs {
			accs[i] = Access{
				Addr: uint64(r.Intn(1 << 16)),
				Size: []uint8{1, 2, 4, 8}[r.Intn(4)],
			}
		}
		c := Count(accs)
		if c < 1 {
			return false
		}
		// Upper bound: every access touches at most 2 sectors.
		if c > 2*n {
			return false
		}
		// Permutation invariance.
		perm := make([]Access, n)
		copy(perm, accs)
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if Count(perm) != c {
			return false
		}
		// Monotonicity: adding an access never reduces the count.
		extra := append(append([]Access{}, accs...), Access{Addr: uint64(r.Intn(1 << 20)), Size: 8})
		return Count(extra) >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
