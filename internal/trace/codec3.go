package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"threadfuser/internal/pool"
)

// Version 3 of the .tft format keeps the v2 delta-encoded record stream but
// appends a per-thread index footer, so readers can decode the header (the
// function table) without touching thread data and can seek to any thread
// independently. That is what makes paper-scale ingest parallel: a 42K-thread
// trace decodes one thread section per worker instead of one byte stream per
// file.
//
// Layout:
//
//	header   magic "TFTR" | version=3 | program | entry | functable | nthreads
//	threads  nthreads × { tid uvarint, nrecords uvarint, v2-encoded records }
//	         (address deltas reset at each thread, as in v2)
//	footer   headerlen uvarint | nthreads uvarint
//	         nthreads × { tid uvarint, offset uvarint, length uvarint }
//	         (offsets are absolute file offsets of each thread section)
//	trailer  footerlen uint64 LE | magic "TFXI"     (fixed 12 bytes)
//
// The trailer is fixed-size so a reader finds the footer by reading the last
// 12 bytes and seeking back footerlen more. A v3 stream read front to back is
// a valid v2-style stream followed by bytes Decode never consumes, which is
// how Decode handles v3 transparently.

const (
	version3     = 3
	indexMagic   = "TFXI"
	trailerSize  = 12 // uint64 footer length + 4-byte index magic
	minIndexSize = trailerSize + 3
)

// ErrNoIndex reports that a .tft input has no usable thread index: it is a
// v1/v2 file, or its footer is missing, truncated, or corrupt. Callers fall
// back to the sequential whole-stream Decode; an unreadable index never makes
// an otherwise-decodable trace unreadable.
var ErrNoIndex = errors.New("trace: no thread index")

// Header is the metadata section of a .tft file: everything before the
// per-thread event streams. ReadHeader returns it without decoding any
// thread data.
type Header struct {
	Version    int
	Program    string
	Entry      uint32
	Funcs      []FuncInfo
	NumThreads int
}

// ReadHeader decodes only the metadata section of a .tft stream (any
// version): program name, entry function, function table, and thread count.
// It reads nothing past the header, so on a v3 file it touches a few KB of a
// trace that may be gigabytes.
func ReadHeader(r io.Reader) (*Header, error) {
	d := &decoder{r: bufio.NewReaderSize(r, 1<<12)}
	h := d.header()
	if d.err != nil {
		return nil, fmt.Errorf("trace: header: %w", d.err)
	}
	return h, nil
}

// EncodeIndexed writes the trace to w in the indexed v3 format.
func EncodeIndexed(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &encoder{w: bw}
	e.bytes([]byte(magic))
	e.uvarint(version3)
	e.str(t.Program)
	e.uvarint(uint64(t.Entry))
	e.uvarint(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		e.str(f.Name)
		e.uvarint(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.uvarint(uint64(b.NInstr))
		}
	}
	e.uvarint(uint64(len(t.Threads)))
	headerLen := e.n
	index := make([]indexEntry, len(t.Threads))
	for i, th := range t.Threads {
		off := e.n
		e.uvarint(uint64(th.TID))
		e.uvarint(uint64(len(th.Records)))
		var prevAddr uint64
		for j := range th.Records {
			prevAddr = e.record2(&th.Records[j], prevAddr)
		}
		index[i] = indexEntry{tid: th.TID, off: off, len: e.n - off}
	}
	footerOff := e.n
	e.uvarint(uint64(headerLen))
	e.uvarint(uint64(len(index)))
	for _, en := range index {
		e.uvarint(uint64(en.tid))
		e.uvarint(uint64(en.off))
		e.uvarint(uint64(en.len))
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(e.n-footerOff))
	copy(trailer[8:], indexMagic)
	e.bytes(trailer[:])
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// WriteFileIndexed encodes the trace to the named file in v3 format.
func WriteFileIndexed(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeIndexed(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type indexEntry struct {
	tid      int
	off, len int64
}

// Reader provides random access to the thread sections of an indexed v3
// trace. Thread decodes are independent of each other, so a Reader is safe
// for concurrent use by multiple goroutines.
type Reader struct {
	ra     io.ReaderAt
	size   int64
	hdr    *Header
	index  []indexEntry
	closer io.Closer
}

// NewReader validates the index footer of a v3 trace held in ra. Any input
// without a usable index — a v1/v2 file, a truncated footer, offsets past
// EOF — yields an error wrapping ErrNoIndex so callers can fall back to the
// sequential Decode.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < minIndexSize {
		return nil, fmt.Errorf("%w: %d-byte input is too short for a footer", ErrNoIndex, size)
	}
	var trailer [trailerSize]byte
	if _, err := ra.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("%w: reading trailer: %v", ErrNoIndex, err)
	}
	if string(trailer[8:]) != indexMagic {
		return nil, fmt.Errorf("%w: no trailer magic", ErrNoIndex)
	}
	footerLen := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerLen <= 0 || footerLen > size-trailerSize {
		return nil, fmt.Errorf("%w: implausible footer length %d in a %d-byte file", ErrNoIndex, footerLen, size)
	}
	footerOff := size - trailerSize - footerLen
	d := &decoder{r: bufio.NewReaderSize(io.NewSectionReader(ra, footerOff, footerLen), 1<<12)}
	headerLen := int64(d.uvarint())
	n := d.count("thread", d.uvarint())
	if d.err != nil {
		return nil, fmt.Errorf("%w: decoding footer: %v", ErrNoIndex, d.err)
	}
	index := make([]indexEntry, 0, preallocCap(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		e := indexEntry{
			tid: int(d.uvarint()),
			off: int64(d.uvarint()),
			len: int64(d.uvarint()),
		}
		if d.err != nil {
			break
		}
		if e.off < headerLen || e.len < 0 || e.off+e.len > footerOff {
			return nil, fmt.Errorf("%w: thread %d section [%d,+%d) outside data region [%d,%d)",
				ErrNoIndex, e.tid, e.off, e.len, headerLen, footerOff)
		}
		index = append(index, e)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: decoding footer: %v", ErrNoIndex, d.err)
	}
	if headerLen <= 0 || headerLen > footerOff {
		return nil, fmt.Errorf("%w: implausible header length %d", ErrNoIndex, headerLen)
	}
	hdr, err := ReadHeader(io.NewSectionReader(ra, 0, headerLen))
	if err != nil {
		return nil, err
	}
	if hdr.Version != version3 {
		return nil, fmt.Errorf("%w: version %d file carries a footer", ErrNoIndex, hdr.Version)
	}
	if hdr.NumThreads != len(index) {
		return nil, fmt.Errorf("%w: header declares %d threads, index has %d", ErrNoIndex, hdr.NumThreads, len(index))
	}
	return &Reader{ra: ra, size: size, hdr: hdr, index: index}, nil
}

// OpenFile opens the named .tft file as an indexed Reader. The caller must
// Close it. A file without a usable index fails with ErrNoIndex.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// Close releases the underlying file when the Reader owns one (OpenFile).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Header returns the trace's metadata section.
func (r *Reader) Header() *Header { return r.hdr }

// NumThreads returns the number of thread sections in the index.
func (r *Reader) NumThreads() int { return len(r.index) }

// TID returns the thread id of section i without decoding it.
func (r *Reader) TID(i int) int { return r.index[i].tid }

// Thread decodes thread section i. Sections decode independently (address
// deltas reset per thread), so concurrent calls are safe.
func (r *Reader) Thread(i int) (*ThreadTrace, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("trace: thread section %d out of range [0,%d)", i, len(r.index))
	}
	en := r.index[i]
	d := &decoder{r: bufio.NewReaderSize(io.NewSectionReader(r.ra, en.off, en.len), 1<<15)}
	th := d.thread(version3)
	if d.err != nil {
		return nil, fmt.Errorf("trace: thread section %d (tid %d): %w", i, en.tid, d.err)
	}
	if th.TID != en.tid {
		return nil, fmt.Errorf("trace: thread section %d decodes tid %d, index says %d", i, th.TID, en.tid)
	}
	return th, nil
}

// Iter returns an iterator over the thread sections in file order. Each
// Next decodes exactly one section, so a consumer that processes threads one
// at a time never materializes the whole trace.
func (r *Reader) Iter() *ThreadIter { return &ThreadIter{r: r} }

// ThreadIter yields one ThreadTrace per Next call.
type ThreadIter struct {
	r *Reader
	i int
}

// Next decodes and returns the next thread section, or (nil, io.EOF) after
// the last one.
func (it *ThreadIter) Next() (*ThreadTrace, error) {
	if it.i >= it.r.NumThreads() {
		return nil, io.EOF
	}
	th, err := it.r.Thread(it.i)
	it.i++
	return th, err
}

// DecodeParallel decodes a trace from ra, fanning per-thread section decodes
// out over a bounded worker pool (parallelism 0 = one worker per core, 1 =
// serial). Assembly is deterministic: threads land at their index position,
// so the result is identical to Decode at every parallelism. Inputs without
// a usable index (v1/v2 files, corrupt footers) degrade to the sequential
// whole-stream decode rather than erroring.
func DecodeParallel(ra io.ReaderAt, size int64, parallelism int) (*Trace, error) {
	r, err := NewReader(ra, size)
	if err != nil {
		if errors.Is(err, ErrNoIndex) {
			return Decode(io.NewSectionReader(ra, 0, size))
		}
		return nil, err
	}
	t := &Trace{Program: r.hdr.Program, Entry: r.hdr.Entry, Funcs: r.hdr.Funcs}
	if r.NumThreads() == 0 {
		return t, nil
	}
	t.Threads = make([]*ThreadTrace, r.NumThreads())
	g := pool.New(parallelism)
	for i := range t.Threads {
		i := i
		g.Go(func() error {
			th, err := r.Thread(i)
			if err != nil {
				return err
			}
			t.Threads[i] = th
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadFileParallel decodes the named .tft file with DecodeParallel.
func ReadFileParallel(path string, parallelism int) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return DecodeParallel(f, st.Size(), parallelism)
}
