package staticlock

import (
	"threadfuser/internal/ir"
)

// Phase 2 runs a second interprocedural fixpoint over the converged symbolic
// register states: at every program point it tracks two shape-keyed held
// maps —
//
//   - must: shapes certainly held (intersection join, under-approximation).
//     A named shape in must at an access certifies a concrete lock held by
//     every thread executing it.
//   - may: shapes possibly held (union join, over-approximation), each with
//     a witness acquire site. Lock-order edges are drawn from may at every
//     acquire.
//
// Hold depths saturate at depthCap; a may entry at the cap becomes sticky
// (releases stop decrementing it), which keeps may an over-approximation
// under recursion deeper than the cap. A release through an unknown address
// ("?") could release anything: it clears must entirely and leaves may
// untouched.

// depthCap saturates recursion-depth tracking. Sticky at the cap: a may
// entry that reaches it is never removed again.
const depthCap = 7

// mayEntry is one possibly-held shape: its saturating depth and the
// smallest acquire-site index that first established it.
type mayEntry struct {
	depth   int8
	witness int32
}

// lstate is the phase-2 fact: must/may held maps keyed by shape string.
type lstate struct {
	must map[string]int8
	may  map[string]mayEntry
}

func newLstate() lstate {
	return lstate{must: map[string]int8{}, may: map[string]mayEntry{}}
}

func (s *lstate) clone() lstate {
	out := newLstate()
	for k, v := range s.must {
		out.must[k] = v
	}
	for k, v := range s.may {
		out.may[k] = v
	}
	return out
}

// ljoinInto merges src into dst (must: intersection with min depth; may:
// union with max depth and min witness) and reports whether dst changed.
func ljoinInto(dst, src *lstate) bool {
	changed := false
	for k, d := range dst.must {
		sd, ok := src.must[k]
		if !ok {
			delete(dst.must, k)
			changed = true
			continue
		}
		if sd < d {
			dst.must[k] = sd
			changed = true
		}
	}
	for k, sv := range src.may {
		dv, ok := dst.may[k]
		if !ok {
			dst.may[k] = sv
			changed = true
			continue
		}
		merged := dv
		if sv.depth > merged.depth {
			merged.depth = sv.depth
		}
		if sv.witness < merged.witness {
			merged.witness = sv.witness
		}
		if merged != dv {
			dst.may[k] = merged
			changed = true
		}
	}
	return changed
}

// acquire applies one lock acquire of the given shape at the given site.
func (s *lstate) acquire(shape string, site int32) {
	if d := s.must[shape]; d < depthCap {
		s.must[shape] = d + 1
	}
	e, ok := s.may[shape]
	if !ok {
		s.may[shape] = mayEntry{depth: 1, witness: site}
		return
	}
	if e.depth < depthCap {
		e.depth++
	}
	if site < e.witness {
		e.witness = site
	}
	s.may[shape] = e
}

// release applies one lock release of the given symbolic address. A precise
// shape releases exactly itself; an unknown address clears must (it might
// release any lock) and leaves may alone (it might release none).
func (s *lstate) release(v symval, shape string) {
	if !v.precise() {
		for k := range s.must {
			delete(s.must, k)
		}
		return
	}
	if d, ok := s.must[shape]; ok {
		if d > 1 {
			s.must[shape] = d - 1
		} else {
			delete(s.must, shape)
		}
	}
	if e, ok := s.may[shape]; ok && e.depth < depthCap { // at the cap: sticky
		if e.depth > 1 {
			e.depth--
			s.may[shape] = e
		} else {
			delete(s.may, shape)
		}
	}
}

// lockFuncState is the per-function phase-2 fixpoint state.
type lockFuncState struct {
	entry     lstate
	exit      lstate
	in        []lstate
	entrySeen bool
	exitSeen  bool
	inSeen    []bool
}

// lockAnalysis drives phase 2 over the phase-1 analysis it wraps.
type lockAnalysis struct {
	sym     *analysis // converged phase-1 states
	fns     []*lockFuncState
	siteIdx map[siteKey]int32 // every OpLock/OpUnlock instruction, pre-indexed
	changed bool
}

// siteKey is the static identity of one lock-op instruction.
type siteKey struct {
	fn    uint32
	block uint32
	instr uint16
}

func newLockAnalysis(sym *analysis) *lockAnalysis {
	la := &lockAnalysis{
		sym:     sym,
		fns:     make([]*lockFuncState, len(sym.fns)),
		siteIdx: map[siteKey]int32{},
	}
	// Pre-index every lock-op site in program order; witness fields refer to
	// these indices, so they exist before the fixpoint runs.
	var n int32
	for _, fs := range sym.fns {
		for _, b := range fs.f.Blocks {
			for ii := range b.Instrs {
				if op := b.Instrs[ii].Op; op == ir.OpLock || op == ir.OpUnlock {
					la.siteIdx[siteKey{uint32(fs.f.ID), uint32(b.ID), uint16(ii)}] = n
					n++
				}
			}
		}
	}
	for i, fs := range sym.fns {
		la.fns[i] = &lockFuncState{
			in:     make([]lstate, len(fs.f.Blocks)),
			inSeen: make([]bool, len(fs.f.Blocks)),
		}
	}
	return la
}

func (la *lockAnalysis) run() {
	prog := la.sym.prog
	entry := la.fns[prog.Entry]
	entry.entry = newLstate() // nothing held at program start
	entry.entrySeen = true

	for {
		la.changed = false
		for fi, lfs := range la.fns {
			if lfs.entrySeen {
				la.runFunc(fi, lfs)
			}
		}
		if !la.changed {
			break
		}
	}

	// Phantoms, after the live program: empty held state (nothing certain,
	// nothing known-possible from callers that do not exist).
	for fi, lfs := range la.fns {
		if lfs.entrySeen {
			continue
		}
		lfs.entry = newLstate()
		lfs.entrySeen = true
		for {
			la.changed = false
			la.runFunc(fi, lfs)
			if !la.changed {
				break
			}
		}
	}
}

func (la *lockAnalysis) runFunc(fi int, lfs *lockFuncState) {
	sfs := la.sym.fns[fi]
	if !lfs.inSeen[0] {
		lfs.in[0] = lfs.entry.clone()
		lfs.inSeen[0] = true
		la.changed = true
	} else if ljoinInto(&lfs.in[0], &lfs.entry) {
		la.changed = true
	}
	for bi := range sfs.f.Blocks {
		if !lfs.inSeen[bi] || !sfs.inSeen[bi] {
			continue
		}
		st := lfs.in[bi].clone()
		la.transferBlock(fi, sfs.f.Blocks[bi], &st)
	}
}

func (la *lockAnalysis) lflow(lfs *lockFuncState, st *lstate, target ir.BlockID) {
	if int(target) >= len(lfs.in) {
		return
	}
	if !lfs.inSeen[target] {
		lfs.in[target] = st.clone()
		lfs.inSeen[target] = true
		la.changed = true
		return
	}
	if ljoinInto(&lfs.in[target], st) {
		la.changed = true
	}
}

func (la *lockAnalysis) contributeEntry(callee *lockFuncState, st *lstate) {
	if !callee.entrySeen {
		callee.entry = st.clone()
		callee.entrySeen = true
		la.changed = true
		return
	}
	if ljoinInto(&callee.entry, st) {
		la.changed = true
	}
}

func (la *lockAnalysis) joinExit(lfs *lockFuncState, st *lstate) {
	if !lfs.exitSeen {
		lfs.exit = st.clone()
		lfs.exitSeen = true
		la.changed = true
		return
	}
	if ljoinInto(&lfs.exit, st) {
		la.changed = true
	}
}

// transferBlock replays the block's symbolic state alongside the held maps
// (lock shapes depend on the registers at each instruction) and propagates
// to successors, callees and the exit, with the same skip-if-unseen call
// continuations as phase 1. Skipping unseen exits is what makes the must
// (intersection) lattice work without a ⊤ initialization: a continuation is
// never seeded from a fact that does not exist yet.
func (la *lockAnalysis) transferBlock(fi int, b *ir.Block, st *lstate) {
	sfs := la.sym.fns[fi]
	lfs := la.fns[fi]
	sym := sfs.in[b.ID]
	fid := uint32(sfs.f.ID)
	for ii := 0; ii < len(b.Instrs)-1; ii++ {
		in := &b.Instrs[ii]
		if o, rel, ok := in.LockOperand(); ok {
			v := lockShape(&sym, o)
			shape := v.shape()
			if rel {
				st.release(v, shape)
			} else {
				st.acquire(shape, la.siteIdx[siteKey{fid, uint32(b.ID), uint16(ii)}])
			}
		}
		transferInstr(&sym, in)
	}

	term := b.Terminator()
	switch term.Op {
	case ir.OpJmp:
		la.lflow(lfs, st, term.Target)
	case ir.OpJcc:
		la.lflow(lfs, st, term.Target)
		la.lflow(lfs, st, term.Fall)
	case ir.OpSwitch:
		for _, t := range term.Targets {
			la.lflow(lfs, st, t)
		}
	case ir.OpRet:
		la.joinExit(lfs, st)
	case ir.OpCall:
		if int(term.Callee) >= len(la.fns) {
			return
		}
		if sfs.phantom {
			// A phantom's callees are analyzed on their own; assume nothing
			// about the continuation's held set beyond what may carries.
			cont := newLstate()
			for k, v := range st.may {
				cont.may[k] = v
			}
			la.lflow(lfs, &cont, term.Fall)
			return
		}
		callee := la.fns[term.Callee]
		la.contributeEntry(callee, st)
		if callee.exitSeen {
			cont := callee.exit.clone()
			la.lflow(lfs, &cont, term.Fall)
		}
	case ir.OpCallR:
		if sfs.phantom {
			cont := newLstate()
			for k, v := range st.may {
				cont.may[k] = v
			}
			la.lflow(lfs, &cont, term.Fall)
			return
		}
		var cont lstate
		seen := false
		for _, callee := range la.fns {
			la.contributeEntry(callee, st)
			if callee.exitSeen {
				if !seen {
					cont = callee.exit.clone()
					seen = true
				} else {
					ljoinInto(&cont, &callee.exit)
				}
			}
		}
		if seen {
			la.lflow(lfs, &cont, term.Fall)
		}
	}
}
